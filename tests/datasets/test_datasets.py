"""Tests for the synthetic dataset generators."""

import pytest

from repro.datasets import (
    LDBC_SCALE_FACTORS,
    LdbcGraphGenerator,
    finance_graph,
    ldbc_snb_graph,
    social_commerce_graph,
    social_commerce_schema,
)
from repro.datasets.ldbc import ldbc_schema


class TestSocialCommerce:
    def test_schema_types(self):
        schema = social_commerce_schema()
        assert set(schema.vertex_types) == {"Person", "Product", "Place"}
        assert schema.has_triple("Person", "Knows", "Person")
        assert schema.has_triple("Product", "ProducedIn", "Place")

    def test_generation_is_deterministic(self):
        a = social_commerce_graph(num_persons=40, seed=9)
        b = social_commerce_graph(num_persons=40, seed=9)
        assert a.num_vertices == b.num_vertices
        assert a.num_edges == b.num_edges

    def test_every_person_has_a_place(self):
        graph = social_commerce_graph(num_persons=30, seed=1)
        for vid in graph.vertices_of_type("Person"):
            assert len(graph.out_edges(vid, "LocatedIn")) >= 1

    def test_china_place_exists(self):
        graph = social_commerce_graph(num_persons=10, seed=1)
        names = {graph.vertex_property(v, "name") for v in graph.vertices_of_type("Place")}
        assert "China" in names

    def test_respects_schema(self):
        graph = social_commerce_graph(num_persons=25, seed=2)
        schema = graph.schema
        for eid in graph.edges():
            edge = graph.edge(eid)
            assert schema.has_triple(
                graph.vertex_type(edge.src), edge.label, graph.vertex_type(edge.dst))


class TestLdbc:
    def test_scale_names(self):
        assert set(LDBC_SCALE_FACTORS) == {"G30", "G100", "G300", "G1000"}
        with pytest.raises(ValueError):
            ldbc_snb_graph("G9999")

    def test_scales_are_increasing(self):
        assert (LDBC_SCALE_FACTORS["G30"] < LDBC_SCALE_FACTORS["G100"]
                < LDBC_SCALE_FACTORS["G300"] < LDBC_SCALE_FACTORS["G1000"])

    def test_schema_has_snb_core_triples(self):
        schema = ldbc_schema()
        assert schema.has_triple("Person", "KNOWS", "Person")
        assert schema.has_triple("Post", "HAS_CREATOR", "Person")
        assert schema.has_triple("Comment", "REPLY_OF", "Post")
        assert schema.has_triple("Forum", "CONTAINER_OF", "Post")
        assert schema.has_triple("Tag", "HAS_TYPE", "TagClass")

    def test_generation(self, ldbc_graph):
        counts = ldbc_graph.counts_by_vertex_type()
        assert counts["Person"] == 60
        assert counts["Post"] > 0
        assert counts["Comment"] > 0
        assert ldbc_graph.num_edges > ldbc_graph.num_vertices

    def test_every_post_has_creator_and_forum(self, ldbc_graph):
        for vid in ldbc_graph.vertices_of_type("Post"):
            assert len(ldbc_graph.out_edges(vid, "HAS_CREATOR")) == 1
            assert len(ldbc_graph.in_edges(vid, "CONTAINER_OF")) == 1

    def test_knows_degree_is_skewed(self):
        graph = LdbcGraphGenerator(num_persons=200, seed=7).generate()
        degrees = sorted(
            (graph.out_degree(v, "KNOWS") for v in graph.vertices_of_type("Person")),
            reverse=True,
        )
        # the top decile should hold a disproportionate share of edges
        top = sum(degrees[: len(degrees) // 10])
        assert top > sum(degrees) * 0.2

    def test_determinism(self):
        a = LdbcGraphGenerator(num_persons=50, seed=3).generate()
        b = LdbcGraphGenerator(num_persons=50, seed=3).generate()
        assert a.counts_by_edge_label() == b.counts_by_edge_label()


class TestFinance:
    def test_structure(self, finance):
        graph, id_sets = finance
        assert set(id_sets) == {"S1_small", "S1_large", "S2_small", "S2_large"}
        assert len(id_sets["S1_small"]) < len(id_sets["S1_large"])
        counts = graph.counts_by_vertex_type()
        assert counts["Person"] == counts["Account"]

    def test_person_level_transfers_exist(self, finance):
        graph, _ = finance
        triples = graph.counts_by_edge_triple()
        assert triples.get(("Person", "TRANSFERS", "Person"), 0) > 0
        assert triples.get(("Account", "TRANSFERS", "Account"), 0) > 0

    def test_id_property_matches_vertex(self, finance):
        graph, id_sets = finance
        ids = {graph.vertex_property(v, "id") for v in graph.vertices_of_type("Person")}
        for person_id in id_sets["S1_small"]:
            assert person_id in ids
