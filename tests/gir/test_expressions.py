"""Tests for the expression mini-language: parsing, analysis and evaluation."""

import pytest

from repro.errors import ParseError
from repro.gir.expressions import (
    BinaryOp,
    ExpressionEvaluator,
    FunctionCall,
    Literal,
    Property,
    TagRef,
    UnaryOp,
    conjoin,
    conjuncts,
    parse_expression,
)


class TestParsing:
    def test_property_equality(self):
        expr = parse_expression("v3.name = 'China'")
        assert expr == BinaryOp("=", Property("v3", "name"), Literal("China"))

    def test_numeric_comparison(self):
        expr = parse_expression("p.age >= 21")
        assert expr == BinaryOp(">=", Property("p", "age"), Literal(21))

    def test_float_literal(self):
        expr = parse_expression("x.score > 0.5")
        assert expr.right == Literal(0.5)

    def test_boolean_connectives(self):
        expr = parse_expression("a.x = 1 AND (b.y = 2 OR NOT c.z = 3)")
        assert isinstance(expr, BinaryOp) and expr.op == "AND"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "OR"
        assert isinstance(expr.right.right, UnaryOp) and expr.right.right.op == "NOT"

    def test_in_list(self):
        expr = parse_expression("p.id IN [1, 2, 3]")
        assert expr == BinaryOp("IN", Property("p", "id"), Literal((1, 2, 3)))

    def test_in_string_list(self):
        expr = parse_expression("p.name IN ['a', 'b']")
        assert expr.right == Literal(("a", "b"))

    def test_tag_reference(self):
        assert parse_expression("v2") == TagRef("v2")

    def test_function_call(self):
        expr = parse_expression("count(v)")
        assert expr == FunctionCall("count", (TagRef("v"),))

    def test_arithmetic_precedence(self):
        expr = parse_expression("a.x + 2 * 3 = 7")
        assert isinstance(expr.left, BinaryOp) and expr.left.op == "+"
        assert isinstance(expr.left.right, BinaryOp) and expr.left.right.op == "*"

    def test_unary_minus_folds_numeric_literal(self):
        expr = parse_expression("a.x > -5")
        assert expr.right == Literal(-5)

    def test_unary_minus_on_property_stays_unary(self):
        expr = parse_expression("a.x > -(b.y)")
        assert isinstance(expr.right, UnaryOp)

    def test_true_false_null(self):
        assert parse_expression("TRUE") == Literal(True)
        assert parse_expression("false") == Literal(False)
        assert parse_expression("null") == Literal(None)

    def test_not_equal_variants(self):
        assert parse_expression("a.x <> 1").op == "<>"
        assert parse_expression("a.x != 1").op == "!="

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            parse_expression("a.x = 'oops")

    def test_trailing_input_raises(self):
        with pytest.raises(ParseError):
            parse_expression("a.x = 1 extra")

    def test_empty_expression_raises(self):
        with pytest.raises(ParseError):
            parse_expression("")


class TestAnalysis:
    def test_referenced_tags(self):
        expr = parse_expression("a.x = 1 AND b.y = c.z")
        assert expr.referenced_tags() == {"a", "b", "c"}

    def test_referenced_tags_includes_bare_tags(self):
        assert parse_expression("count(v2)").referenced_tags() == {"v2"}

    def test_referenced_properties(self):
        expr = parse_expression("a.x = 1 AND b.y > 2")
        assert expr.referenced_properties() == {("a", "x"), ("b", "y")}

    def test_conjuncts_split(self):
        expr = parse_expression("a.x = 1 AND b.y = 2 AND c.z = 3")
        assert len(conjuncts(expr)) == 3

    def test_conjuncts_do_not_split_or(self):
        expr = parse_expression("a.x = 1 OR b.y = 2")
        assert conjuncts(expr) == [expr]

    def test_conjoin_roundtrip(self):
        parts = conjuncts(parse_expression("a.x = 1 AND b.y = 2"))
        combined = conjoin(parts)
        assert conjuncts(combined) == parts

    def test_conjoin_empty(self):
        assert conjoin([]) is None


class TestEvaluation:
    @pytest.fixture()
    def evaluator(self):
        data = {
            "a": {"x": 1, "name": "alpha"},
            "b": {"y": 5},
        }

        def resolve_tag(tag, binding):
            return binding.get(tag)

        def resolve_property(tag, key, binding):
            return data.get(tag, {}).get(key)

        return ExpressionEvaluator(resolve_tag, resolve_property,
                                   functions={"length": len})

    def test_comparisons(self, evaluator):
        assert evaluator.evaluate(parse_expression("a.x = 1"), {}) is True
        assert evaluator.evaluate(parse_expression("a.x > 5"), {}) is False
        assert evaluator.evaluate(parse_expression("b.y <= 5"), {}) is True
        assert evaluator.evaluate(parse_expression("a.name = 'alpha'"), {}) is True

    def test_boolean_logic(self, evaluator):
        assert evaluator.evaluate(parse_expression("a.x = 1 AND b.y = 5"), {}) is True
        assert evaluator.evaluate(parse_expression("a.x = 2 OR b.y = 5"), {}) is True
        assert evaluator.evaluate(parse_expression("NOT a.x = 2"), {}) is True

    def test_in_operator(self, evaluator):
        assert evaluator.evaluate(parse_expression("a.x IN [1, 2]"), {}) is True
        assert evaluator.evaluate(parse_expression("a.x IN [3, 4]"), {}) is False

    def test_arithmetic(self, evaluator):
        assert evaluator.evaluate(parse_expression("a.x + b.y = 6"), {}) is True
        assert evaluator.evaluate(parse_expression("b.y % 2 = 1"), {}) is True

    def test_null_propagation(self, evaluator):
        # missing property compares as not-ordered -> False, arithmetic -> None
        assert evaluator.evaluate(parse_expression("a.missing > 1"), {}) is False
        assert evaluator.evaluate(parse_expression("a.missing + 1 = 2"), {}) is False

    def test_tag_resolution(self, evaluator):
        assert evaluator.evaluate(parse_expression("v"), {"v": 42}) == 42

    def test_function_call(self, evaluator):
        assert evaluator.evaluate(parse_expression("length('abc') = 3"), {}) is True

    def test_unknown_function_raises(self, evaluator):
        with pytest.raises(ValueError):
            evaluator.evaluate(parse_expression("mystery(1)"), {})
