"""Tests for variable-length path support across the stack."""

import pytest

from repro.backend import GraphScopeLikeBackend
from repro.backend.runtime.binding import PRef
from repro.gir import GraphIrBuilder
from repro.gir.pattern import PathConstraint
from repro.graph.types import BasicType, Direction
from repro.lang.cypher import cypher_to_gir
from repro.optimizer.planner import GOptimizer


class TestBuilderPathSupport:
    def test_expand_path_builds_path_edge(self):
        builder = GraphIrBuilder()
        handle = (builder.pattern_start()
                  .get_v(alias="a", vtype=BasicType("Person"))
                  .expand_path(tag="a", alias="p", etype=BasicType("KNOWS"),
                               direction=Direction.OUT, min_hops=2, max_hops=3,
                               path_constraint=PathConstraint.SIMPLE)
                  .get_v(tag="p", alias="b", vtype=BasicType("Person"))
                  .pattern_end())
        edge = handle.root.pattern.edge("p")
        assert edge.is_path
        assert (edge.min_hops, edge.max_hops) == (2, 3)
        assert edge.path_constraint is PathConstraint.SIMPLE

    def test_camel_case_alias(self):
        builder = GraphIrBuilder()
        sentence = builder.pattern_start()
        assert sentence.expandPath == sentence.expand_path


class TestPathExecution:
    def test_cypher_variable_length_counts_paths(self, ldbc_graph):
        backend = GraphScopeLikeBackend(ldbc_graph, num_partitions=2)
        optimizer = GOptimizer.for_graph(ldbc_graph, profile=backend.profile())
        one_hop = cypher_to_gir(
            "MATCH (a:Person)-[p:KNOWS*1]->(b:Person) WHERE a.id = 1 RETURN count(b) AS cnt")
        two_hop = cypher_to_gir(
            "MATCH (a:Person)-[p:KNOWS*1..2]->(b:Person) WHERE a.id = 1 RETURN count(b) AS cnt")
        single = backend.execute(optimizer.optimize(one_hop).physical_plan).rows[0]["cnt"]
        upto_two = backend.execute(optimizer.optimize(two_hop).physical_plan).rows[0]["cnt"]
        direct = ldbc_graph.out_degree(
            next(v for v in ldbc_graph.vertices_of_type("Person")
                 if ldbc_graph.vertex_property(v, "id") == 1), "KNOWS")
        assert single == direct
        assert upto_two >= single

    def test_path_binding_is_returned(self, ldbc_graph):
        backend = GraphScopeLikeBackend(ldbc_graph, num_partitions=2)
        optimizer = GOptimizer.for_graph(ldbc_graph, profile=backend.profile())
        plan = cypher_to_gir(
            "MATCH (a:Person)-[p:KNOWS*2]->(b:Person) WHERE a.id = 0 RETURN p, b LIMIT 3")
        result = backend.execute(optimizer.optimize(plan).physical_plan)
        for row in result.rows:
            assert isinstance(row["p"], PRef)
            assert row["p"].length == 2
        rendered = backend.render_rows(result, limit=1)
        if rendered:
            assert "path" in str(rendered[0]["p"])
