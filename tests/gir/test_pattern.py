"""Tests for pattern graphs: construction, subpatterns, merging, canonical keys."""

import pytest

from repro.errors import GirBuildError
from repro.gir.expressions import parse_expression
from repro.gir.pattern import PathConstraint, PatternGraph
from repro.graph.types import AllType, BasicType, UnionType


@pytest.fixture()
def triangle():
    pattern = PatternGraph()
    pattern.add_vertex("a", BasicType("Person"))
    pattern.add_vertex("b", BasicType("Person"))
    pattern.add_vertex("c", BasicType("Place"))
    pattern.add_edge("e1", "a", "b", BasicType("Knows"))
    pattern.add_edge("e2", "b", "c", BasicType("LocatedIn"))
    pattern.add_edge("e3", "a", "c", BasicType("LocatedIn"))
    return pattern


class TestConstruction:
    def test_vertex_and_edge_counts(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 3
        assert set(triangle.vertex_names) == {"a", "b", "c"}

    def test_edge_requires_existing_vertices(self):
        pattern = PatternGraph()
        pattern.add_vertex("a")
        with pytest.raises(GirBuildError):
            pattern.add_edge("e", "a", "missing")

    def test_duplicate_edge_rejected(self, triangle):
        with pytest.raises(GirBuildError):
            triangle.add_edge("e1", "a", "b")

    def test_invalid_hop_range_rejected(self):
        pattern = PatternGraph()
        pattern.add_vertex("a")
        pattern.add_vertex("b")
        with pytest.raises(GirBuildError):
            pattern.add_edge("p", "a", "b", min_hops=3, max_hops=2)

    def test_re_adding_vertex_merges_constraints(self):
        pattern = PatternGraph()
        pattern.add_vertex("a", UnionType("Post", "Comment"))
        pattern.add_vertex("a", BasicType("Post"))
        assert pattern.vertex("a").constraint == BasicType("Post")

    def test_default_constraint_is_all(self):
        pattern = PatternGraph()
        pattern.add_vertex("a")
        assert pattern.vertex("a").constraint.is_all

    def test_unknown_lookup_raises(self, triangle):
        with pytest.raises(GirBuildError):
            triangle.vertex("zzz")
        with pytest.raises(GirBuildError):
            triangle.edge("zzz")


class TestTopology:
    def test_incident_and_neighbors(self, triangle):
        assert {e.name for e in triangle.incident_edges("a")} == {"e1", "e3"}
        assert set(triangle.neighbors("a")) == {"b", "c"}
        assert triangle.degree("b") == 2

    def test_out_in_edges(self, triangle):
        assert {e.name for e in triangle.out_edges("a")} == {"e1", "e3"}
        assert {e.name for e in triangle.in_edges("c")} == {"e2", "e3"}

    def test_edge_helpers(self, triangle):
        edge = triangle.edge("e1")
        assert edge.other_endpoint("a") == "b"
        assert edge.direction_from("a").value == "out"
        assert edge.direction_from("b").value == "in"
        with pytest.raises(GirBuildError):
            edge.other_endpoint("c")

    def test_connectivity(self, triangle):
        assert triangle.is_connected()
        disconnected = PatternGraph()
        disconnected.add_vertex("x")
        disconnected.add_vertex("y")
        assert not disconnected.is_connected()

    def test_path_edges_flag(self):
        pattern = PatternGraph()
        pattern.add_vertex("a")
        pattern.add_vertex("b")
        pattern.add_edge("p", "a", "b", min_hops=1, max_hops=3,
                         path_constraint=PathConstraint.SIMPLE)
        assert pattern.has_path_edges()
        assert pattern.edge("p").is_path


class TestFunctionalUpdates:
    def test_with_vertex_constraint(self, triangle):
        updated = triangle.with_vertex_constraint("a", UnionType("Person", "Product"))
        assert updated.vertex("a").constraint == UnionType("Person", "Product")
        assert triangle.vertex("a").constraint == BasicType("Person")  # original untouched

    def test_with_edge_constraint(self, triangle):
        updated = triangle.with_edge_constraint("e1", AllType())
        assert updated.edge("e1").constraint.is_all

    def test_with_edge_cannot_change_endpoints(self, triangle):
        moved = triangle.edge("e1").__class__(
            name="e1", src="a", dst="c", constraint=AllType())
        with pytest.raises(GirBuildError):
            triangle.with_edge(moved)

    def test_predicate_attachment(self, triangle):
        predicate = parse_expression("c.name = 'China'")
        updated = triangle.with_vertex(triangle.vertex("c").with_predicate(predicate))
        assert len(updated.vertex("c").predicates) == 1
        assert len(triangle.vertex("c").predicates) == 0

    def test_columns_attachment(self, triangle):
        updated = triangle.with_vertex(triangle.vertex("c").with_columns(["name"]))
        assert updated.vertex("c").columns == frozenset({"name"})


class TestSubpatterns:
    def test_subpattern_by_edges(self, triangle):
        sub = triangle.subpattern_by_edges(["e1"])
        assert set(sub.vertex_names) == {"a", "b"}
        assert set(sub.edge_names) == {"e1"}

    def test_subpattern_preserves_constraints(self, triangle):
        sub = triangle.subpattern_by_edges(["e2"])
        assert sub.vertex("c").constraint == BasicType("Place")

    def test_single_vertex_pattern(self, triangle):
        single = triangle.single_vertex_pattern("a")
        assert single.num_vertices == 1
        assert single.num_edges == 0

    def test_common_vertices_and_edges(self, triangle):
        other = triangle.subpattern_by_edges(["e1", "e2"])
        assert triangle.common_vertices(other) == frozenset({"a", "b", "c"})
        assert triangle.common_edges(other) == frozenset({"e1", "e2"})

    def test_merge_joins_on_shared_names(self):
        left = PatternGraph()
        left.add_vertex("a", BasicType("Person"))
        left.add_vertex("b", AllType())
        left.add_edge("e1", "a", "b")
        right = PatternGraph()
        right.add_vertex("b", BasicType("Product"))
        right.add_vertex("c", BasicType("Place"))
        right.add_edge("e2", "b", "c")
        merged = left.merge(right)
        assert merged.num_vertices == 3
        assert merged.num_edges == 2
        assert merged.vertex("b").constraint == BasicType("Product")

    def test_merge_conflicting_edge_endpoints_rejected(self):
        left = PatternGraph()
        left.add_vertex("a")
        left.add_vertex("b")
        left.add_edge("e", "a", "b")
        right = PatternGraph()
        right.add_vertex("a")
        right.add_vertex("b")
        right.add_edge("e", "b", "a")
        with pytest.raises(GirBuildError):
            left.merge(right)


class TestCanonicalKeys:
    def test_key_invariant_under_renaming(self):
        p1 = PatternGraph()
        p1.add_vertex("x", BasicType("Person"))
        p1.add_vertex("y", BasicType("Place"))
        p1.add_edge("e", "x", "y", BasicType("LocatedIn"))
        p2 = PatternGraph()
        p2.add_vertex("first", BasicType("Person"))
        p2.add_vertex("second", BasicType("Place"))
        p2.add_edge("edge", "first", "second", BasicType("LocatedIn"))
        assert p1.canonical_key() == p2.canonical_key()

    def test_key_distinguishes_direction(self):
        p1 = PatternGraph()
        p1.add_vertex("x", BasicType("A"))
        p1.add_vertex("y", BasicType("B"))
        p1.add_edge("e", "x", "y", BasicType("E"))
        p2 = PatternGraph()
        p2.add_vertex("x", BasicType("A"))
        p2.add_vertex("y", BasicType("B"))
        p2.add_edge("e", "y", "x", BasicType("E"))
        assert p1.canonical_key() != p2.canonical_key()

    def test_key_distinguishes_types(self, triangle):
        other = triangle.with_vertex_constraint("c", BasicType("Product"))
        assert triangle.canonical_key() != other.canonical_key()

    def test_describe_mentions_all_elements(self, triangle):
        text = triangle.describe()
        for name in ("a", "b", "c", "e1", "e2", "e3"):
            assert name in text
