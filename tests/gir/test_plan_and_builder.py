"""Tests for logical operators, plans, and the GraphIrBuilder."""

import pytest

from repro.errors import GirBuildError
from repro.gir import GraphIrBuilder
from repro.gir.data_model import DataType, Field, RecordSchema
from repro.gir.expressions import TagRef, parse_expression
from repro.gir.operators import (
    AggregateFunction,
    GroupOp,
    JoinOp,
    JoinType,
    LimitOp,
    MatchPatternOp,
    OrderOp,
    ProjectOp,
    SelectOp,
    UnionOp,
    infer_output_schema,
)
from repro.gir.pattern import PatternGraph
from repro.graph.types import AllType, BasicType, Direction


def simple_pattern():
    pattern = PatternGraph()
    pattern.add_vertex("a", BasicType("Person"))
    pattern.add_vertex("b", BasicType("Place"))
    pattern.add_edge("e", "a", "b", BasicType("LocatedIn"))
    return pattern


class TestOperators:
    def test_match_output_tags(self):
        op = MatchPatternOp(pattern=simple_pattern())
        assert op.output_tags() == {"a", "b", "e"}

    def test_select_referenced_tags(self):
        op = SelectOp(predicate=parse_expression("a.name = 'x' AND b.id = 1"))
        assert op.referenced_tags() == {"a", "b"}

    def test_with_inputs_returns_new_node(self):
        child = MatchPatternOp(pattern=simple_pattern())
        op = SelectOp(predicate=parse_expression("a.id = 1"))
        chained = op.with_inputs((child,))
        assert chained.inputs == (child,)
        assert op.inputs == ()

    def test_group_output_tags(self):
        from repro.gir.operators import AggregateCall, ProjectItem

        op = GroupOp(
            keys=(ProjectItem(TagRef("a"), "a"),),
            aggregations=(AggregateCall(AggregateFunction.COUNT, None, "cnt"),),
        )
        assert op.output_tags() == {"a", "cnt"}
        assert op.referenced_tags() == {"a"}

    def test_describe_strings(self):
        match = MatchPatternOp(pattern=simple_pattern())
        assert "MATCH_PATTERN" in match.describe()
        join = JoinOp(keys=("a",), inputs=(match, match))
        assert "JOIN" in join.describe()
        union = UnionOp(inputs=(match, match))
        assert "UNION" in union.describe()

    def test_infer_output_schema_for_match(self):
        schema = infer_output_schema(MatchPatternOp(pattern=simple_pattern()))
        assert "a" in schema and "e" in schema
        assert schema.field("a").datatype == DataType.VERTEX
        assert schema.field("e").datatype == DataType.EDGE


class TestRecordSchema:
    def test_with_field_replaces(self):
        schema = RecordSchema((Field("a", DataType.VERTEX),))
        updated = schema.with_field(Field("a", DataType.INTEGER))
        assert updated.field("a").datatype == DataType.INTEGER
        assert len(updated) == 1

    def test_merge_and_without(self):
        left = RecordSchema((Field("a"),))
        right = RecordSchema((Field("b"),))
        merged = left.merge(right)
        assert merged.names == ("a", "b")
        assert merged.without(["a"]).names == ("b",)

    def test_graph_type_flag(self):
        assert DataType.VERTEX.is_graph_type
        assert not DataType.INTEGER.is_graph_type


class TestGraphIrBuilder:
    def build_two_hop(self):
        builder = GraphIrBuilder()
        return (builder.pattern_start()
                .get_v(alias="v1", vtype=BasicType("Person"))
                .expand_e(tag="v1", alias="e1", etype=AllType(), direction=Direction.OUT)
                .get_v(tag="e1", alias="v2", vtype=AllType())
                .pattern_end())

    def test_pattern_sentence(self):
        handle = self.build_two_hop()
        plan = handle.build()
        match = plan.root
        assert isinstance(match, MatchPatternOp)
        assert set(match.pattern.vertex_names) == {"v1", "v2"}
        assert set(match.pattern.edge_names) == {"e1"}

    def test_incoming_expansion_reverses_edge(self):
        builder = GraphIrBuilder()
        handle = (builder.pattern_start()
                  .get_v(alias="a", vtype=BasicType("Place"))
                  .expand_e(tag="a", alias="e", direction=Direction.IN)
                  .get_v(tag="e", alias="b", vtype=BasicType("Person"))
                  .pattern_end())
        pattern = handle.root.pattern
        edge = pattern.edge("e")
        assert edge.src == "b" and edge.dst == "a"

    def test_dangling_expand_rejected(self):
        builder = GraphIrBuilder()
        sentence = (builder.pattern_start()
                    .get_v(alias="a")
                    .expand_e(tag="a", alias="e"))
        with pytest.raises(GirBuildError):
            sentence.pattern_end()

    def test_get_v_with_tag_requires_pending_edge(self):
        builder = GraphIrBuilder()
        sentence = builder.pattern_start().get_v(alias="a")
        with pytest.raises(GirBuildError):
            sentence.get_v(tag="missing", alias="b")

    def test_empty_pattern_rejected(self):
        builder = GraphIrBuilder()
        with pytest.raises(GirBuildError):
            builder.pattern_start().pattern_end()
        with pytest.raises(GirBuildError):
            builder.match_pattern(PatternGraph())

    def test_relational_chain(self):
        handle = self.build_two_hop()
        plan = (handle.select("v2.name = 'x'")
                .group(keys=["v1"], agg_func=AggregateFunction.COUNT, alias="cnt")
                .order(keys=["cnt"], limit=5)
                .build())
        ops = [type(node).__name__ for node in plan.nodes()]
        assert ops == ["MatchPatternOp", "SelectOp", "GroupOp", "OrderOp"]
        assert plan.root.limit == 5

    def test_group_requires_aggregation(self):
        handle = self.build_two_hop()
        with pytest.raises(GirBuildError):
            handle.group(keys=["v1"])

    def test_join_and_union(self):
        left = self.build_two_hop()
        right = self.build_two_hop()
        joined = left.join(right, keys=["v1"]).build()
        assert isinstance(joined.root, JoinOp)
        unioned = left.union(right).build()
        assert isinstance(unioned.root, UnionOp)

    def test_match_composition_requires_common_tags(self):
        builder = GraphIrBuilder()
        left = self.build_two_hop()
        other = (builder.pattern_start()
                 .get_v(alias="x1", vtype=BasicType("Person"))
                 .expand_e(tag="x1", alias="y1", direction=Direction.OUT)
                 .get_v(tag="y1", alias="x2")
                 .pattern_end())
        with pytest.raises(GirBuildError):
            left.match(other)

    def test_camel_case_aliases(self):
        builder = GraphIrBuilder()
        sentence = builder.patternStart()
        handle = (sentence.getV(alias="v1", vtype=AllType())
                  .expandE(tag="v1", alias="e1")
                  .getV(tag="e1", alias="v2")
                  .patternEnd())
        assert isinstance(handle.root, MatchPatternOp)

    def test_limit_and_project(self):
        handle = self.build_two_hop()
        plan = handle.project([("v2.name", "name")]).limit(3).build()
        assert isinstance(plan.root, LimitOp)
        assert isinstance(plan.root.inputs[0], ProjectOp)


class TestLogicalPlan:
    def test_traversal_and_size(self):
        builder = GraphIrBuilder()
        handle = (builder.pattern_start()
                  .get_v(alias="a").expand_e(tag="a", alias="e").get_v(tag="e", alias="b")
                  .pattern_end()
                  .select("b.x = 1")
                  .limit(10))
        plan = handle.build()
        assert plan.size() == 3
        assert plan.depth() == 3
        assert len(plan.patterns()) == 1

    def test_transform_replaces_nodes(self):
        builder = GraphIrBuilder()
        plan = (builder.pattern_start()
                .get_v(alias="a").expand_e(tag="a", alias="e").get_v(tag="e", alias="b")
                .pattern_end()
                .limit(10)
                .build())

        def bump_limit(node):
            if isinstance(node, LimitOp):
                return LimitOp(count=node.count * 2, inputs=node.inputs)
            return node

        rewritten = plan.transform(bump_limit)
        assert rewritten.root.count == 20
        assert plan.root.count == 10  # original untouched

    def test_downstream_referenced_tags(self):
        builder = GraphIrBuilder()
        match = (builder.pattern_start()
                 .get_v(alias="a").expand_e(tag="a", alias="e").get_v(tag="e", alias="b")
                 .pattern_end())
        plan = match.select("b.name = 'x'").build()
        tags = plan.downstream_referenced_tags(plan.patterns()[0])
        assert tags == {"b"}

    def test_explain_contains_operator_names(self):
        builder = GraphIrBuilder()
        plan = (builder.pattern_start()
                .get_v(alias="a").expand_e(tag="a", alias="e").get_v(tag="e", alias="b")
                .pattern_end()
                .select("a.x = 1")
                .build())
        text = plan.explain()
        assert "SELECT" in text and "MATCH_PATTERN" in text
