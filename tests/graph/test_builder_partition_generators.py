"""Unit tests for the graph builder, partitioner and random generators."""

import random

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.generators import (
    connect_bipartite,
    dedupe_edges,
    ensure_at_least_one,
    preferential_edges,
    sample_degree_power_law,
    uniform_edges,
)
from repro.graph.partition import GraphPartitioner


class TestGraphBuilder:
    def test_natural_keys(self):
        builder = GraphBuilder()
        builder.add_vertex(("Person", 1), "Person", {"name": "x"})
        builder.add_vertex(("Person", 2), "Person")
        builder.add_edge(("Person", 1), ("Person", 2), "Knows")
        graph = builder.build()
        assert graph.num_vertices == 2
        assert graph.num_edges == 1

    def test_duplicate_key_rejected(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "T")
        with pytest.raises(GraphError):
            builder.add_vertex("a", "T")

    def test_ensure_vertex_idempotent(self):
        builder = GraphBuilder()
        first = builder.ensure_vertex("a", "T")
        second = builder.ensure_vertex("a", "T")
        assert first == second
        assert builder.num_vertices == 1

    def test_edge_with_unknown_key_rejected(self):
        builder = GraphBuilder()
        builder.add_vertex("a", "T")
        with pytest.raises(GraphError):
            builder.add_edge("a", "missing", "E")

    def test_vertex_id_lookup(self):
        builder = GraphBuilder()
        vid = builder.add_vertex("a", "T")
        assert builder.vertex_id("a") == vid
        assert builder.has_vertex("a")
        with pytest.raises(GraphError):
            builder.vertex_id("missing")


class TestPartitioner:
    def test_partition_in_range(self):
        partitioner = GraphPartitioner(4)
        for vid in range(200):
            assert 0 <= partitioner.partition_of(vid) < 4

    def test_deterministic(self):
        a = GraphPartitioner(8)
        b = GraphPartitioner(8)
        assert [a.partition_of(i) for i in range(50)] == [b.partition_of(i) for i in range(50)]

    def test_roughly_balanced(self):
        partitioner = GraphPartitioner(4)
        balance = partitioner.balance(range(2000))
        assert len(balance) == 4
        assert min(balance.values()) > 2000 / 4 * 0.5

    def test_is_local(self):
        partitioner = GraphPartitioner(1)
        assert partitioner.is_local(1, 999)

    def test_group_by_partition_covers_all(self):
        partitioner = GraphPartitioner(3)
        groups = partitioner.group_by_partition(range(30))
        assert sum(len(v) for v in groups.values()) == 30

    def test_group_by_partition_include_empty_is_stable(self):
        partitioner = GraphPartitioner(4)
        # an empty input still yields one (empty) bucket per partition, in
        # partition order, so "one task per partition" loops are stable
        groups = partitioner.group_by_partition([], include_empty=True)
        assert list(groups) == [0, 1, 2, 3]
        assert all(ids == [] for ids in groups.values())
        # default shape is unchanged: only populated partitions appear
        assert partitioner.group_by_partition([]) == {}
        some = partitioner.group_by_partition([7], include_empty=True)
        assert list(some) == [0, 1, 2, 3]
        assert sum(len(ids) for ids in some.values()) == 1

    def test_skew_reports_max_over_mean(self):
        partitioner = GraphPartitioner(4)
        assert partitioner.skew([]) == 0.0
        # large id range hashes roughly uniformly: skew near 1
        assert 1.0 <= partitioner.skew(range(4000)) < 1.3
        # every id on one partition: skew equals the partition count
        lopsided = [vid for vid in range(400) if partitioner.partition_of(vid) == 2]
        assert partitioner.skew(lopsided) == pytest.approx(4.0)

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            GraphPartitioner(0)


class TestGenerators:
    def test_power_law_degree_bounds(self):
        rng = random.Random(0)
        degrees = [sample_degree_power_law(rng, 5.0, max_degree=50) for _ in range(500)]
        assert all(0 <= d <= 50 for d in degrees)
        assert sum(degrees) > 0

    def test_power_law_zero_mean(self):
        assert sample_degree_power_law(random.Random(0), 0.0) == 0

    def test_uniform_edges_no_self_loops(self):
        rng = random.Random(1)
        edges = uniform_edges(rng, range(20), range(20), 3.0)
        assert all(src != dst for src, dst in edges)

    def test_uniform_edges_empty_inputs(self):
        assert uniform_edges(random.Random(0), [], [1], 2.0) == []
        assert uniform_edges(random.Random(0), [1], [], 2.0) == []

    def test_preferential_edges_skewed(self):
        rng = random.Random(2)
        edges = preferential_edges(rng, range(200), range(200), 4.0)
        in_degree = {}
        for _, dst in edges:
            in_degree[dst] = in_degree.get(dst, 0) + 1
        # early targets should be much more popular than late ones
        early = sum(in_degree.get(i, 0) for i in range(20))
        late = sum(in_degree.get(i, 0) for i in range(180, 200))
        assert early > late

    def test_dedupe_edges(self):
        assert dedupe_edges([(1, 2), (1, 2), (2, 3)]) == [(1, 2), (2, 3)]

    def test_connect_bipartite_modes(self):
        rng = random.Random(3)
        uniform = connect_bipartite(rng, range(10), range(10), 2.0, skewed=False)
        skewed = connect_bipartite(rng, range(10), range(10), 2.0, skewed=True)
        assert all(isinstance(edge, tuple) for edge in uniform + skewed)

    def test_ensure_at_least_one(self):
        rng = random.Random(4)
        edges = ensure_at_least_one(rng, [], range(5), range(5, 10))
        assert {src for src, _ in edges} == set(range(5))
