"""Unit tests for the property graph substrate."""

import pytest

from repro.errors import GraphError
from repro.graph.property_graph import PropertyGraph
from repro.graph.types import BasicType, Direction, UnionType


@pytest.fixture()
def graph():
    g = PropertyGraph()
    a = g.add_vertex("Person", {"name": "a"})
    b = g.add_vertex("Person", {"name": "b"})
    c = g.add_vertex("Place", {"name": "c"})
    g.add_edge(a, b, "Knows", {"since": 2020})
    g.add_edge(a, c, "LocatedIn")
    g.add_edge(b, c, "LocatedIn")
    g.add_edge(a, b, "Knows")  # parallel edge
    return g


class TestConstruction:
    def test_counts(self, graph):
        assert graph.num_vertices == 3
        assert graph.num_edges == 4

    def test_auto_ids_are_distinct(self):
        g = PropertyGraph()
        ids = [g.add_vertex("T") for _ in range(5)]
        assert len(set(ids)) == 5

    def test_explicit_vertex_id(self):
        g = PropertyGraph()
        assert g.add_vertex("T", vertex_id=42) == 42
        # auto ids continue after the explicit one
        assert g.add_vertex("T") == 43

    def test_duplicate_vertex_id_rejected(self):
        g = PropertyGraph()
        g.add_vertex("T", vertex_id=1)
        with pytest.raises(GraphError):
            g.add_vertex("T", vertex_id=1)

    def test_edge_requires_existing_endpoints(self):
        g = PropertyGraph()
        v = g.add_vertex("T")
        with pytest.raises(GraphError):
            g.add_edge(v, 999, "E")

    def test_schema_validation(self, tiny_schema):
        g = PropertyGraph(schema=tiny_schema, validate=True)
        with pytest.raises(GraphError):
            g.add_vertex("Ghost")
        person = g.add_vertex("Person")
        place = g.add_vertex("Place")
        with pytest.raises(GraphError):
            g.add_edge(place, person, "LocatedIn")  # wrong direction for the triple
        g.add_edge(person, place, "LocatedIn")


class TestAccess:
    def test_vertex_view(self, graph):
        vertex = graph.vertex(0)
        assert vertex.type == "Person"
        assert vertex.properties["name"] == "a"

    def test_vertex_property_default(self, graph):
        assert graph.vertex_property(0, "missing", default=7) == 7

    def test_unknown_vertex_raises(self, graph):
        with pytest.raises(GraphError):
            graph.vertex(99)
        with pytest.raises(GraphError):
            graph.vertex_type(99)

    def test_edge_view(self, graph):
        edge = graph.edge(0)
        assert edge.label == "Knows"
        assert edge.properties["since"] == 2020
        assert graph.edge_endpoints(0) == (0, 1)

    def test_unknown_edge_raises(self, graph):
        with pytest.raises(GraphError):
            graph.edge(99)

    def test_vertices_of_type(self, graph):
        persons = list(graph.vertices_of_type("Person"))
        assert sorted(persons) == [0, 1]
        union = list(graph.vertices_of_type(UnionType("Person", "Place")))
        assert sorted(union) == [0, 1, 2]
        everything = list(graph.vertices_of_type(None))
        assert len(everything) == 3

    def test_has_edge(self, graph):
        assert graph.has_edge(0, 1, "Knows")
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0, "Knows")
        assert not graph.has_edge(0, 1, "LocatedIn")


class TestAdjacency:
    def test_out_edges_filtered_by_label(self, graph):
        knows = graph.out_edges(0, "Knows")
        assert len(knows) == 2
        located = graph.out_edges(0, BasicType("LocatedIn"))
        assert len(located) == 1

    def test_in_edges(self, graph):
        incoming = graph.in_edges(2)
        assert len(incoming) == 2
        assert {src for _, src in incoming} == {0, 1}

    def test_adjacent_edges_both(self, graph):
        # vertex 1 has two incoming Knows edges and one outgoing LocatedIn edge
        assert len(graph.adjacent_edges(1, Direction.BOTH)) == 3

    def test_neighbors_and_sets(self, graph):
        assert sorted(graph.neighbors(0, Direction.OUT)) == [1, 1, 2]
        assert graph.neighbor_set(0, Direction.OUT) == {1, 2}

    def test_degrees(self, graph):
        assert graph.out_degree(0) == 3
        assert graph.in_degree(2) == 2
        assert graph.degree(1) == 3
        assert graph.out_degree(0, "Knows") == 2

    def test_adjacency_of_isolated_vertex(self):
        g = PropertyGraph()
        v = g.add_vertex("T")
        assert g.out_edges(v) == []
        assert g.in_edges(v) == []


class TestStatistics:
    def test_vertex_count_by_constraint(self, graph):
        assert graph.vertex_count("Person") == 2
        assert graph.vertex_count(UnionType("Person", "Place")) == 3
        assert graph.vertex_count() == 3

    def test_edge_count_by_constraint(self, graph):
        assert graph.edge_count("Knows") == 2
        assert graph.edge_count() == 4

    def test_counts_by_type(self, graph):
        assert graph.counts_by_vertex_type() == {"Person": 2, "Place": 1}
        assert graph.counts_by_edge_label() == {"Knows": 2, "LocatedIn": 2}

    def test_counts_by_edge_triple(self, graph):
        triples = graph.counts_by_edge_triple()
        assert triples[("Person", "Knows", "Person")] == 2
        assert triples[("Person", "LocatedIn", "Place")] == 2

    def test_schema_is_inferred_when_missing(self, graph):
        schema = graph.schema
        assert schema.has_triple("Person", "Knows", "Person")
