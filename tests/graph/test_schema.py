"""Unit tests for the graph schema."""

import pytest

from repro.errors import SchemaError
from repro.graph.schema import GraphSchema
from repro.graph.types import AllType, BasicType, Direction, UnionType


@pytest.fixture()
def schema(tiny_schema):
    return tiny_schema


class TestDeclaration:
    def test_vertex_and_edge_registration(self, schema):
        assert set(schema.vertex_types) == {"Person", "Product", "Place"}
        assert set(schema.edge_labels) == {"Knows", "Purchases", "LocatedIn", "ProducedIn"}

    def test_edge_requires_known_vertex_types(self):
        schema = GraphSchema()
        schema.add_vertex_type("A")
        with pytest.raises(SchemaError):
            schema.add_edge_type("E", "A", "Unknown")
        with pytest.raises(SchemaError):
            schema.add_edge_type("E", "Unknown", "A")

    def test_duplicate_registration_is_idempotent(self, schema):
        before = len(schema.edge_triples)
        schema.add_edge_type("Knows", "Person", "Person")
        assert len(schema.edge_triples) == before

    def test_vertex_property_merge(self):
        schema = GraphSchema()
        schema.add_vertex_type("A", {"x": "int"})
        schema.add_vertex_type("A", {"y": "string"})
        assert schema.vertex_property_type("A", "x") == "int"
        assert schema.vertex_property_type("A", "y") == "string"

    def test_unknown_vertex_type_lookup_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.vertex_type_def("Nope")


class TestConnectivity:
    def test_out_neighbor_types(self, schema):
        assert schema.out_neighbor_types("Person") == frozenset({"Person", "Product", "Place"})
        assert schema.out_neighbor_types("Product") == frozenset({"Place"})
        assert schema.out_neighbor_types("Place") == frozenset()

    def test_out_edge_labels(self, schema):
        assert schema.out_edge_labels("Product") == frozenset({"ProducedIn"})

    def test_in_neighbor_types(self, schema):
        assert schema.in_neighbor_types("Place") == frozenset({"Person", "Product"})
        assert schema.in_neighbor_types("Person") == frozenset({"Person"})

    def test_neighbor_types_both(self, schema):
        both = schema.neighbor_types("Person", Direction.BOTH)
        assert both == frozenset({"Person", "Product", "Place"})

    def test_edge_labels_between(self, schema):
        labels = schema.edge_labels_between({"Person"}, {"Place"})
        assert labels == frozenset({"LocatedIn"})
        labels = schema.edge_labels_between({"Place"}, {"Person"}, Direction.IN)
        assert labels == frozenset({"LocatedIn"})

    def test_dst_and_src_types_of(self, schema):
        assert schema.dst_types_of("Purchases") == frozenset({"Product"})
        assert schema.src_types_of("ProducedIn") == frozenset({"Product"})
        assert schema.dst_types_of("LocatedIn", src_types={"Product"}) == frozenset()

    def test_has_triple(self, schema):
        assert schema.has_triple("Person", "Knows", "Person")
        assert not schema.has_triple("Person", "Knows", "Place")

    def test_max_schema_degree_positive(self, schema):
        assert schema.max_schema_degree >= 3


class TestConstraintResolution:
    def test_resolve_vertex_constraint(self, schema):
        assert schema.resolve_vertex_constraint(AllType()) == frozenset(schema.vertex_types)
        assert schema.resolve_vertex_constraint(BasicType("Person")) == frozenset({"Person"})
        assert schema.resolve_vertex_constraint(UnionType("Person", "Ghost")) == frozenset({"Person"})

    def test_resolve_edge_constraint(self, schema):
        assert schema.resolve_edge_constraint(BasicType("Knows")) == frozenset({"Knows"})
        assert schema.resolve_edge_constraint(AllType()) == frozenset(schema.edge_labels)


class TestSerialisationAndInference:
    def test_round_trip(self, schema):
        rebuilt = GraphSchema.from_dict(schema.to_dict())
        assert set(rebuilt.vertex_types) == set(schema.vertex_types)
        assert set(rebuilt.edge_triples) == set(schema.edge_triples)

    def test_infer_from_graph(self, tiny_graph):
        inferred = GraphSchema.infer_from_graph(tiny_graph)
        assert set(inferred.vertex_types) == {"Person", "Product", "Place"}
        assert inferred.has_triple("Person", "Knows", "Person")
        assert inferred.has_triple("Product", "ProducedIn", "Place")
        # property keys discovered from the data
        assert inferred.vertex_property_type("Person", "name") is not None
