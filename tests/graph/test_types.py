"""Unit tests for type constraints and directions."""

import pytest

from repro.graph.types import AllType, BasicType, Direction, TypeConstraint, UnionType


class TestConstructors:
    def test_basic_type_is_basic(self):
        constraint = BasicType("Person")
        assert constraint.is_basic
        assert not constraint.is_union
        assert not constraint.is_all
        assert constraint.single_type == "Person"

    def test_union_type_varargs(self):
        constraint = UnionType("Post", "Comment")
        assert constraint.is_union
        assert constraint.types == frozenset({"Post", "Comment"})

    def test_union_type_iterable(self):
        constraint = UnionType(["Post", "Comment"])
        assert constraint.types == frozenset({"Post", "Comment"})

    def test_union_of_one_is_basic(self):
        assert UnionType("Post").is_basic

    def test_all_type(self):
        constraint = AllType()
        assert constraint.is_all
        assert constraint.types is None

    def test_empty(self):
        constraint = TypeConstraint.empty()
        assert constraint.is_empty
        assert not constraint.is_basic

    def test_coerce_none_is_all(self):
        assert TypeConstraint.coerce(None).is_all

    def test_coerce_string_is_basic(self):
        assert TypeConstraint.coerce("Person") == BasicType("Person")

    def test_coerce_list_is_union(self):
        assert TypeConstraint.coerce(["A", "B"]) == UnionType("A", "B")

    def test_coerce_passthrough(self):
        constraint = BasicType("A")
        assert TypeConstraint.coerce(constraint) is constraint

    def test_single_type_raises_for_union(self):
        with pytest.raises(ValueError):
            UnionType("A", "B").single_type


class TestSetOperations:
    def test_contains_basic(self):
        assert BasicType("Person").contains("Person")
        assert not BasicType("Person").contains("Place")

    def test_contains_all(self):
        assert AllType().contains("Anything")

    def test_contains_empty(self):
        assert not TypeConstraint.empty().contains("Person")

    def test_intersect_basic_union(self):
        result = UnionType("A", "B").intersect(BasicType("B"))
        assert result == BasicType("B")

    def test_intersect_with_all_returns_other(self):
        assert AllType().intersect(UnionType("A", "B")) == UnionType("A", "B")
        assert UnionType("A", "B").intersect(AllType()) == UnionType("A", "B")

    def test_intersect_disjoint_is_empty(self):
        assert BasicType("A").intersect(BasicType("B")).is_empty

    def test_intersect_accepts_iterable(self):
        assert UnionType("A", "B").intersect(["B", "C"]) == BasicType("B")

    def test_union_with(self):
        assert BasicType("A").union_with(BasicType("B")) == UnionType("A", "B")

    def test_union_with_all_is_all(self):
        assert BasicType("A").union_with(AllType()).is_all

    def test_resolve_all_uses_universe(self):
        assert AllType().resolve(["A", "B"]) == frozenset({"A", "B"})

    def test_resolve_explicit_ignores_universe(self):
        assert UnionType("A", "B").resolve(["A", "B", "C"]) == frozenset({"A", "B"})

    def test_cardinality(self):
        assert UnionType("A", "B").cardinality() == 2
        assert AllType().cardinality(universe_size=5) == 5
        with pytest.raises(ValueError):
            AllType().cardinality()


class TestDunder:
    def test_equality_and_hash(self):
        assert UnionType("A", "B") == UnionType("B", "A")
        assert hash(UnionType("A", "B")) == hash(UnionType("B", "A"))
        assert BasicType("A") != BasicType("B")
        assert AllType() == AllType()

    def test_iteration_sorted(self):
        assert list(UnionType("B", "A")) == ["A", "B"]

    def test_iterating_all_raises(self):
        with pytest.raises(TypeError):
            list(AllType())

    def test_len(self):
        assert len(UnionType("A", "B")) == 2
        with pytest.raises(TypeError):
            len(AllType())

    def test_label(self):
        assert AllType().label() == "*"
        assert UnionType("Post", "Comment").label() == "Comment|Post"
        assert BasicType("Person").label() == "Person"

    def test_repr_forms(self):
        assert "BasicType" in repr(BasicType("A"))
        assert "UnionType" in repr(UnionType("A", "B"))
        assert repr(AllType()) == "AllType()"


class TestDirection:
    def test_reverse(self):
        assert Direction.OUT.reverse() is Direction.IN
        assert Direction.IN.reverse() is Direction.OUT
        assert Direction.BOTH.reverse() is Direction.BOTH
