"""Integration tests: plan equivalence, cross-language agreement, semantics."""

import itertools

import pytest

from repro.backend import GraphScopeLikeBackend, Neo4jLikeBackend
from repro.backend.base import ExecutionResult
from repro.gir.operators import AggregateFunction
from repro.gir.pattern import PatternGraph
from repro.graph.types import BasicType
from repro.lang.cypher import cypher_to_gir
from repro.lang.gremlin import gremlin_to_gir
from repro.optimizer.baselines import RandomPlanner, UserOrderPlanner, plan_from_vertex_order
from repro.optimizer.cost_model import CostModel
from repro.optimizer.physical_plan import PhysicalPlan
from repro.optimizer.physical_spec import graphscope_profile, neo4j_profile
from repro.optimizer.planner import GOptimizer, OptimizerConfig
from repro.optimizer.search import PatternSearcher, build_pattern_physical


def count_rows(backend, physical):
    return backend.execute(PhysicalPlan(physical.root) if hasattr(physical, "root") else physical)


def pattern_result_signature(backend, op, tags):
    result = backend.execute(PhysicalPlan(op))
    return sorted(tuple(row.get(tag) for tag in tags) for row in result.rows)


class TestPlanEquivalence:
    """Every planner must produce plans with identical results (PatternJoin rule)."""

    @pytest.fixture()
    def pattern(self):
        pattern = PatternGraph()
        pattern.add_vertex("p", BasicType("Person"))
        pattern.add_vertex("f", BasicType("Person"))
        pattern.add_vertex("c", BasicType("Place"))
        pattern.add_vertex("t", BasicType("Tag"))
        pattern.add_edge("k", "p", "f", BasicType("KNOWS"))
        pattern.add_edge("loc", "f", "c", BasicType("IS_LOCATED_IN"))
        pattern.add_edge("i", "f", "t", BasicType("HAS_INTEREST"))
        return pattern

    def test_all_planners_agree(self, ldbc_graph, ldbc_gq, pattern):
        backend = GraphScopeLikeBackend(ldbc_graph, num_partitions=2)
        profile = graphscope_profile()
        tags = list(pattern.vertex_names)
        searcher_plan = PatternSearcher(ldbc_gq, profile).optimize(pattern).plan
        user_plan = UserOrderPlanner(ldbc_gq, profile).optimize(pattern).plan
        random_plan = RandomPlanner(ldbc_gq, profile, seed=3).optimize(pattern).plan
        signatures = []
        for plan in (searcher_plan, user_plan, random_plan):
            op = build_pattern_physical(plan, profile)
            signatures.append(pattern_result_signature(backend, op, tags))
        assert signatures[0] == signatures[1] == signatures[2]
        assert signatures[0], "the pattern should have matches on the test graph"

    def test_neo4j_and_graphscope_operators_agree(self, ldbc_graph, ldbc_gq, pattern):
        backend = Neo4jLikeBackend(ldbc_graph)
        tags = list(pattern.vertex_names)
        neo_plan = PatternSearcher(ldbc_gq, neo4j_profile()).optimize(pattern).plan
        gs_plan = PatternSearcher(ldbc_gq, graphscope_profile()).optimize(pattern).plan
        neo_sig = pattern_result_signature(backend, build_pattern_physical(neo_plan, neo4j_profile()), tags)
        gs_sig = pattern_result_signature(backend, build_pattern_physical(gs_plan, graphscope_profile()), tags)
        assert neo_sig == gs_sig

    def test_all_vertex_orders_agree_on_triangle(self, ldbc_graph, ldbc_gq):
        pattern = PatternGraph()
        pattern.add_vertex("a", BasicType("Person"))
        pattern.add_vertex("b", BasicType("Person"))
        pattern.add_vertex("c", BasicType("Person"))
        pattern.add_edge("e1", "a", "b", BasicType("KNOWS"))
        pattern.add_edge("e2", "b", "c", BasicType("KNOWS"))
        pattern.add_edge("e3", "a", "c", BasicType("KNOWS"))
        backend = GraphScopeLikeBackend(ldbc_graph, num_partitions=2)
        profile = graphscope_profile()
        cost_model = CostModel(ldbc_gq, profile)
        signatures = set()
        for order in itertools.permutations(["a", "b", "c"]):
            plan = plan_from_vertex_order(pattern, list(order), cost_model)
            op = build_pattern_physical(plan, profile)
            signature = tuple(pattern_result_signature(backend, op, ["a", "b", "c"]))
            signatures.add(signature)
        assert len(signatures) == 1


class TestCrossLanguage:
    def test_cypher_and_gremlin_same_answer(self, ldbc_graph):
        backend = GraphScopeLikeBackend(ldbc_graph, num_partitions=2)
        optimizer = GOptimizer.for_graph(ldbc_graph, profile=backend.profile())
        cypher_plan = cypher_to_gir(
            "MATCH (f:Forum)-[:CONTAINER_OF]->(m:Post)-[:HAS_CREATOR]->(p:Person) "
            "RETURN count(m) AS cnt")
        gremlin_plan = gremlin_to_gir(
            "g.V().hasLabel('Forum').as('f').out('CONTAINER_OF').hasLabel('Post').as('m')"
            ".out('HAS_CREATOR').hasLabel('Person').as('p').count()")
        cypher_count = backend.execute(optimizer.optimize(cypher_plan).physical_plan).rows[0]["cnt"]
        gremlin_count = backend.execute(optimizer.optimize(gremlin_plan).physical_plan).rows[0]["count"]
        assert cypher_count == gremlin_count > 0


class TestOptimizationPreservesResults:
    @pytest.mark.parametrize("query", [
        "MATCH (p:Person)-[:KNOWS]->(f:Person)-[:IS_LOCATED_IN]->(c:Place) "
        "WHERE c.name = 'China City 0' RETURN count(p) AS cnt",
        "MATCH (p:Person)-[:LIKES]->(m:Post)-[:HAS_TAG]->(t:Tag) "
        "RETURN t.name AS tag, count(p) AS cnt ORDER BY cnt DESC, tag ASC LIMIT 5",
        "MATCH (m)-[:HAS_CREATOR]->(p:Person), (m)-[:HAS_TAG]->(t:Tag) RETURN count(m) AS cnt",
    ])
    def test_full_pipeline_vs_unoptimized(self, ldbc_graph, query):
        backend = GraphScopeLikeBackend(ldbc_graph, num_partitions=2,
                                        max_intermediate_results=2_000_000)
        optimized = GOptimizer.for_graph(ldbc_graph, profile=backend.profile())
        unoptimized = GOptimizer.for_graph(
            ldbc_graph, profile=backend.profile(),
            config=OptimizerConfig(enable_rbo=False, enable_cbo=False))
        plan = cypher_to_gir(query)
        fast = backend.execute(optimized.optimize(plan).physical_plan)
        slow = backend.execute(unoptimized.optimize(plan).physical_plan)
        assert not fast.timed_out and not slow.timed_out
        columns = sorted(fast.rows[0].keys()) if fast.rows else []
        assert sorted(map(tuple, (tuple(r.get(c) for c in columns) for r in fast.rows))) == \
            sorted(map(tuple, (tuple(r.get(c) for c in columns) for r in slow.rows)))

    def test_no_repeated_edge_semantics_filters_duplicates(self, ldbc_graph):
        """Cypher counts must exclude matches reusing an edge; Gremlin keeps them."""
        backend = GraphScopeLikeBackend(ldbc_graph, num_partitions=2)
        optimizer = GOptimizer.for_graph(ldbc_graph, profile=backend.profile())
        cypher_plan = cypher_to_gir(
            "MATCH (a:Person)-[:KNOWS]->(b:Person)<-[:KNOWS]-(c:Person) RETURN count(a) AS cnt")
        gremlin_plan = gremlin_to_gir(
            "g.V().hasLabel('Person').as('a').out('KNOWS').hasLabel('Person').as('b')"
            ".in('KNOWS').hasLabel('Person').as('c').count()")
        cypher_count = backend.execute(optimizer.optimize(cypher_plan).physical_plan).rows[0]["cnt"]
        gremlin_count = backend.execute(optimizer.optimize(gremlin_plan).physical_plan).rows[0]["count"]
        # homomorphism semantics also counts the matches where both pattern
        # edges bind the same data edge (a == c)
        assert gremlin_count > cypher_count

    def test_shared_union_matches_plain_union(self, ldbc_graph):
        from repro.gir.builder import GraphIrBuilder
        from repro.optimizer.rules import ComSubPatternRule

        builder = GraphIrBuilder()
        shared = PatternGraph()
        shared.add_vertex("p", BasicType("Person"))
        shared.add_vertex("f", BasicType("Person"))
        shared.add_edge("k", "p", "f", BasicType("KNOWS"))
        left = shared.copy()
        left.add_vertex("c", BasicType("Place"))
        left.add_edge("loc", "f", "c", BasicType("IS_LOCATED_IN"))
        right = shared.copy()
        right.add_vertex("t", BasicType("Tag"))
        right.add_edge("i", "f", "t", BasicType("HAS_INTEREST"))
        plan = (builder.match_pattern(left).union(builder.match_pattern(right))
                .group(keys=["p"], agg_func=AggregateFunction.COUNT, alias="cnt")
                .order(keys=["p"])
                .build())
        backend = GraphScopeLikeBackend(ldbc_graph, num_partitions=2)
        with_rule = GOptimizer.for_graph(ldbc_graph, profile=backend.profile())
        without_rule = GOptimizer.for_graph(
            ldbc_graph, profile=backend.profile(),
            config=OptimizerConfig(enable_rbo=False))
        shared_result = backend.execute(with_rule.optimize(plan).physical_plan)
        plain_result = backend.execute(without_rule.optimize(plan).physical_plan)
        key = lambda rows: sorted((row["p"], row["cnt"]) for row in rows)
        assert key(shared_result.rows) == key(plain_result.rows)
