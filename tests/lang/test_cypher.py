"""Tests for the Cypher front-end: parser and GIR lowering."""

import pytest

from repro.errors import ParseError
from repro.gir.expressions import BinaryOp, Literal, Property
from repro.gir.operators import (
    AggregateFunction,
    DedupOp,
    GroupOp,
    JoinOp,
    JoinType,
    LimitOp,
    MatchPatternOp,
    OrderOp,
    ProjectOp,
    SelectOp,
    UnionOp,
)
from repro.lang.cypher import cypher_to_gir, parse_cypher
from repro.lang.cypher.ast import MatchClause, ReturnClause, WithClause


class TestParser:
    def test_single_match_return(self):
        ast = parse_cypher("MATCH (a:Person)-[e:KNOWS]->(b:Person) RETURN a, b")
        assert len(ast.parts) == 1
        clauses = ast.parts[0].clauses
        assert isinstance(clauses[0], MatchClause)
        assert isinstance(clauses[-1], ReturnClause)
        path = clauses[0].patterns[0]
        assert [n.alias for n in path.nodes] == ["a", "b"]
        assert path.relationships[0].types == ("KNOWS",)
        assert path.relationships[0].direction == "out"

    def test_incoming_relationship(self):
        ast = parse_cypher("MATCH (a)<-[:LIKES]-(b) RETURN a")
        rel = ast.parts[0].clauses[0].patterns[0].relationships[0]
        assert rel.direction == "in"

    def test_union_type_labels(self):
        ast = parse_cypher("MATCH (m:Post|Comment) RETURN m")
        node = ast.parts[0].clauses[0].patterns[0].nodes[0]
        assert node.labels == ("Post", "Comment")

    def test_property_map(self):
        ast = parse_cypher("MATCH (a:Person {id: 3, name: 'x'}) RETURN a")
        node = ast.parts[0].clauses[0].patterns[0].nodes[0]
        assert dict(node.properties) == {"id": 3, "name": "x"}

    def test_variable_length_relationship(self):
        ast = parse_cypher("MATCH (a)-[p:KNOWS*2..3]->(b) RETURN a")
        rel = ast.parts[0].clauses[0].patterns[0].relationships[0]
        assert rel.is_path and rel.min_hops == 2 and rel.max_hops == 3

    def test_fixed_length_star(self):
        ast = parse_cypher("MATCH (a)-[p:KNOWS*2]->(b) RETURN a")
        rel = ast.parts[0].clauses[0].patterns[0].relationships[0]
        assert rel.min_hops == rel.max_hops == 2

    def test_where_clause(self):
        ast = parse_cypher("MATCH (a:Person) WHERE a.age > 30 AND a.name = 'x' RETURN a")
        where = ast.parts[0].clauses[0].where
        assert where.referenced_properties() == {("a", "age"), ("a", "name")}

    def test_with_aggregation(self):
        ast = parse_cypher("MATCH (a)-[]->(b) WITH a, count(b) AS cnt RETURN a, cnt")
        with_clause = ast.parts[0].clauses[1]
        assert isinstance(with_clause, WithClause)
        aggregates = [i for i in with_clause.items if i.aggregate]
        assert len(aggregates) == 1 and aggregates[0].alias == "cnt"

    def test_count_star_and_distinct(self):
        ast = parse_cypher("MATCH (a) RETURN count(*) AS all, count(DISTINCT a) AS uniq")
        items = ast.parts[0].clauses[-1].items
        assert items[0].aggregate == "count"
        assert items[1].aggregate == "count" and items[1].distinct

    def test_order_by_and_limit(self):
        ast = parse_cypher("MATCH (a) RETURN a.name AS n ORDER BY n DESC, a.age LIMIT 7")
        ret = ast.parts[0].clauses[-1]
        assert len(ret.order_by) == 2
        assert ret.order_by[0].ascending is False
        assert ret.order_by[1].ascending is True
        assert ret.limit == 7

    def test_union(self):
        ast = parse_cypher("MATCH (a:Person) RETURN a UNION ALL MATCH (a:Product) RETURN a")
        assert len(ast.parts) == 2
        assert ast.union_all

    def test_parameters_substitution(self):
        ast = parse_cypher("MATCH (a) WHERE a.id IN $ids AND a.name = $name RETURN a",
                           parameters={"ids": [1, 2], "name": "x"})
        where = ast.parts[0].clauses[0].where
        assert ("a", "id") in where.referenced_properties()

    def test_missing_parameter_raises(self):
        with pytest.raises(ParseError):
            parse_cypher("MATCH (a) WHERE a.id = $missing RETURN a")

    def test_multiple_patterns_in_one_match(self):
        ast = parse_cypher("MATCH (a)-[]->(b), (b)-[]->(c) RETURN a")
        assert len(ast.parts[0].clauses[0].patterns) == 2

    def test_syntax_error_reports(self):
        with pytest.raises(ParseError):
            parse_cypher("MATCH (a:Person RETURN a")
        with pytest.raises(ParseError):
            parse_cypher("MATCH (a) RETURN a extra tokens )(")


class TestLowering:
    def test_basic_plan_shape(self):
        plan = cypher_to_gir(
            "MATCH (a:Person)-[e:KNOWS]->(b:Person) WHERE b.name = 'x' "
            "RETURN a.name AS name LIMIT 5")
        ops = [type(node) for node in plan.nodes()]
        assert MatchPatternOp in ops
        assert SelectOp in ops
        assert ProjectOp in ops
        assert LimitOp in ops

    def test_pattern_constraints_and_semantics(self):
        plan = cypher_to_gir("MATCH (a:Person)-[e:KNOWS|LIKES]->(b) RETURN a")
        match = plan.patterns()[0]
        assert match.semantics == "no_repeated_edge"
        pattern = match.pattern
        assert pattern.vertex("a").constraint.label() == "Person"
        assert pattern.edge("e").constraint.label() == "KNOWS|LIKES"
        assert pattern.vertex("b").constraint.is_all

    def test_inline_properties_become_predicates(self):
        plan = cypher_to_gir("MATCH (a:Person {id: 3})-[]->(b) RETURN a")
        vertex = plan.patterns()[0].pattern.vertex("a")
        assert vertex.predicates == (BinaryOp("=", Property("a", "id"), Literal(3)),)

    def test_multiple_match_clauses_joined(self):
        plan = cypher_to_gir("MATCH (a)-[]->(b) MATCH (b)-[]->(c) RETURN a")
        joins = [n for n in plan.nodes() if isinstance(n, JoinOp)]
        assert len(joins) == 1
        assert joins[0].keys == ("b",)
        assert joins[0].join_type is JoinType.INNER

    def test_optional_match_becomes_left_outer(self):
        plan = cypher_to_gir("MATCH (a:Person)-[]->(b) OPTIONAL MATCH (b)-[]->(c) RETURN a")
        joins = [n for n in plan.nodes() if isinstance(n, JoinOp)]
        assert joins and joins[0].join_type is JoinType.LEFT_OUTER

    def test_disjoint_match_clauses_rejected(self):
        with pytest.raises(ParseError):
            cypher_to_gir("MATCH (a)-[]->(b) MATCH (x)-[]->(y) RETURN a")

    def test_aggregation_lowered_to_group(self):
        plan = cypher_to_gir("MATCH (a)-[]->(b) RETURN a, count(b) AS cnt")
        groups = [n for n in plan.nodes() if isinstance(n, GroupOp)]
        assert len(groups) == 1
        group = groups[0]
        assert [k.alias for k in group.keys] == ["a"]
        assert group.aggregations[0].function is AggregateFunction.COUNT
        assert group.aggregations[0].alias == "cnt"

    def test_count_distinct(self):
        plan = cypher_to_gir("MATCH (a)-[]->(b) RETURN count(DISTINCT b) AS cnt")
        group = [n for n in plan.nodes() if isinstance(n, GroupOp)][0]
        assert group.aggregations[0].function is AggregateFunction.COUNT_DISTINCT

    def test_return_distinct_dedups(self):
        plan = cypher_to_gir("MATCH (a)-[]->(b) RETURN DISTINCT b")
        assert any(isinstance(n, DedupOp) for n in plan.nodes())

    def test_order_by_lowered(self):
        plan = cypher_to_gir("MATCH (a)-[]->(b) RETURN b.name AS n ORDER BY n DESC LIMIT 3")
        orders = [n for n in plan.nodes() if isinstance(n, OrderOp)]
        assert orders and orders[0].limit == 3
        assert orders[0].keys[0].ascending is False

    def test_union_lowered(self):
        plan = cypher_to_gir(
            "MATCH (a:Person) RETURN a.id AS id UNION ALL MATCH (a:Product) RETURN a.id AS id")
        assert isinstance(plan.root, UnionOp)

    def test_variable_length_lowered_to_path_edge(self):
        plan = cypher_to_gir("MATCH (a:Person)-[p:KNOWS*1..2]->(b:Person) RETURN count(a) AS c")
        pattern = plan.patterns()[0].pattern
        assert pattern.edge("p").is_path
        assert pattern.edge("p").max_hops == 2

    def test_where_on_with_clause(self):
        plan = cypher_to_gir(
            "MATCH (a)-[]->(b) WITH a, count(b) AS cnt WHERE cnt > 2 RETURN a, cnt")
        selects = [n for n in plan.nodes() if isinstance(n, SelectOp)]
        assert any("cnt" in s.predicate.referenced_tags() for s in selects)
