"""Additional Cypher front-end edge cases."""

import pytest

from repro.errors import ParseError
from repro.gir.operators import MatchPatternOp, OrderOp, ProjectOp
from repro.lang.cypher import cypher_to_gir, parse_cypher


class TestParserEdgeCases:
    def test_anonymous_nodes_and_relationships(self):
        plan = cypher_to_gir("MATCH (:Person)-[]->(:Post) RETURN count(*) AS cnt")
        pattern = plan.patterns()[0].pattern
        assert pattern.num_vertices == 2 and pattern.num_edges == 1
        assert all(name.startswith("_") for name in pattern.vertex_names)

    def test_bare_arrow_relationships(self):
        ast = parse_cypher("MATCH (a)-->(b)<--(c) RETURN a")
        rels = ast.parts[0].clauses[0].patterns[0].relationships
        assert rels[0].direction == "out"
        assert rels[1].direction == "in"

    def test_undirected_relationship_treated_as_outgoing(self):
        ast = parse_cypher("MATCH (a)-[e:KNOWS]-(b) RETURN a")
        assert ast.parts[0].clauses[0].patterns[0].relationships[0].direction == "both"
        plan = cypher_to_gir("MATCH (a)-[e:KNOWS]-(b) RETURN a")
        edge = plan.patterns()[0].pattern.edge("e")
        assert edge.src == "a" and edge.dst == "b"

    def test_relationship_property_map(self):
        plan = cypher_to_gir("MATCH (a)-[e:KNOWS {since: 2020}]->(b) RETURN a")
        assert len(plan.patterns()[0].pattern.edge("e").predicates) == 1

    def test_skip_clause_is_accepted(self):
        plan = cypher_to_gir("MATCH (a:Person) RETURN a.id AS id ORDER BY id SKIP 5 LIMIT 3")
        orders = [n for n in plan.nodes() if isinstance(n, OrderOp)]
        assert orders[0].limit == 3

    def test_keyword_case_insensitivity(self):
        plan = cypher_to_gir("match (a:Person) where a.id = 1 return a.id as x limit 1")
        assert any(isinstance(n, ProjectOp) for n in plan.nodes())

    def test_string_parameter_escaping(self):
        plan = cypher_to_gir("MATCH (a:Person) WHERE a.firstName = $name RETURN a",
                             parameters={"name": "O'Hara"})
        assert plan.patterns()

    def test_open_ended_star(self):
        ast = parse_cypher("MATCH (a)-[p:KNOWS*]->(b) RETURN a")
        rel = ast.parts[0].clauses[0].patterns[0].relationships[0]
        assert rel.is_path and rel.max_hops >= rel.min_hops

    def test_star_with_upper_bound_only(self):
        ast = parse_cypher("MATCH (a)-[p:KNOWS*..3]->(b) RETURN a")
        rel = ast.parts[0].clauses[0].patterns[0].relationships[0]
        assert rel.min_hops == 1 and rel.max_hops == 3

    def test_missing_return_is_allowed_for_match_only(self):
        # a dangling query without RETURN parses but cannot be lowered
        ast = parse_cypher("MATCH (a:Person) RETURN a")
        assert len(ast.parts[0].clauses) == 2

    def test_empty_query_rejected(self):
        with pytest.raises(ParseError):
            parse_cypher("")

    def test_union_distinct_flag(self):
        ast = parse_cypher("MATCH (a:Person) RETURN a.id AS id "
                           "UNION MATCH (b:Product) RETURN b.id AS id")
        assert ast.union_all is False

    def test_multiple_with_stages(self):
        plan = cypher_to_gir("""
            MATCH (a:Person)-[:KNOWS]->(b:Person)
            WITH b, count(a) AS fans
            MATCH (b)-[:HAS_INTEREST]->(t:Tag)
            RETURN t.name AS tag, sum(fans) AS total
            ORDER BY total DESC
            LIMIT 5
        """)
        matches = [n for n in plan.nodes() if isinstance(n, MatchPatternOp)]
        assert len(matches) == 2
