"""Tests for the Gremlin front-end: parser and GIR lowering."""

import pytest

from repro.errors import ParseError
from repro.gir.operators import GroupOp, LimitOp, MatchPatternOp, OrderOp, ProjectOp
from repro.lang.gremlin import gremlin_to_gir, parse_gremlin
from repro.lang.gremlin.ast import Step, Symbol, Traversal


class TestParser:
    def test_simple_chain(self):
        traversal = parse_gremlin("g.V().hasLabel('Person').out('KNOWS').count()")
        names = [step.name for step in traversal.steps]
        assert names == ["V", "hasLabel", "out", "count"]
        assert traversal.steps[1].args == ("Person",)

    def test_numeric_argument(self):
        traversal = parse_gremlin("g.V().limit(10)")
        assert traversal.steps[1].args == (10,)

    def test_nested_anonymous_traversal(self):
        traversal = parse_gremlin("g.V().match(__.as('a').out('X').as('b'))")
        match_step = traversal.steps[1]
        assert isinstance(match_step.args[0], Traversal)
        assert match_step.args[0].anonymous
        assert [s.name for s in match_step.args[0].steps] == ["as", "out", "as"]

    def test_symbol_arguments(self):
        traversal = parse_gremlin("g.V().order().by(values, desc)")
        by_step = traversal.steps[2]
        assert by_step.args == (Symbol("values"), Symbol("desc"))

    def test_qualified_enum(self):
        traversal = parse_gremlin("g.V().order().by('x', Order.desc)")
        assert traversal.steps[2].args[1] == Symbol("desc")

    def test_must_start_with_g(self):
        with pytest.raises(ParseError):
            parse_gremlin("V().count()")

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            parse_gremlin("g.V().has('name)")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_gremlin("g.V().count() extra")


class TestLowering:
    def test_linear_traversal_builds_pattern(self):
        plan = gremlin_to_gir(
            "g.V().hasLabel('Person').as('a').out('KNOWS').hasLabel('Person').as('b').count()")
        match = plan.patterns()[0]
        pattern = match.pattern
        assert set(pattern.vertex_names) == {"a", "b"}
        assert pattern.vertex("a").constraint.label() == "Person"
        assert [e.constraint.label() for e in pattern.edges] == ["KNOWS"]

    def test_in_step_reverses_direction(self):
        plan = gremlin_to_gir("g.V().hasLabel('Place').as('c').in('IS_LOCATED_IN').as('p').count()")
        pattern = plan.patterns()[0].pattern
        edge = pattern.edges[0]
        assert edge.src == "p" and edge.dst == "c"

    def test_has_becomes_predicate(self):
        plan = gremlin_to_gir("g.V().hasLabel('Person').as('a').has('name', 'x').count()")
        vertex = plan.patterns()[0].pattern.vertex("a")
        assert len(vertex.predicates) == 1

    def test_match_step_merges_tags(self):
        plan = gremlin_to_gir(
            "g.V().match(__.as('v1').out().as('v2'), __.as('v2').out().as('v3'))"
            ".match(__.as('v1').out().as('v3')).select('v1').count()")
        pattern = plan.patterns()[0].pattern
        assert set(pattern.vertex_names) == {"v1", "v2", "v3"}
        assert pattern.num_edges == 3

    def test_group_count_by(self):
        plan = gremlin_to_gir("g.V().hasLabel('Person').as('a').out('KNOWS').as('b')"
                              ".groupCount().by('a')")
        groups = [n for n in plan.nodes() if isinstance(n, GroupOp)]
        assert groups and [k.alias for k in groups[0].keys] == ["a"]

    def test_order_and_limit(self):
        plan = gremlin_to_gir("g.V().as('a').out().as('b').groupCount().by('a')"
                              ".order().by(values, desc).limit(5)")
        assert any(isinstance(n, OrderOp) for n in plan.nodes())
        assert isinstance(plan.root, LimitOp)

    def test_values_projection(self):
        plan = gremlin_to_gir("g.V().hasLabel('Person').as('a').values('name')")
        projects = [n for n in plan.nodes() if isinstance(n, ProjectOp)]
        assert projects and projects[0].items[0].alias == "name"

    def test_multi_select_projection(self):
        plan = gremlin_to_gir("g.V().as('a').out().as('b').select('a', 'b')")
        projects = [n for n in plan.nodes() if isinstance(n, ProjectOp)]
        assert {i.alias for i in projects[0].items} == {"a", "b"}

    def test_select_unknown_tag_rejected(self):
        with pytest.raises(ParseError):
            gremlin_to_gir("g.V().as('a').select('zzz').count()")

    def test_gremlin_and_cypher_agree(self, social_graph):
        """The same CGP in both languages optimizes to the same pattern shape."""
        from repro.lang.cypher import cypher_to_gir

        cypher_plan = cypher_to_gir(
            "MATCH (a:Person)-[:Knows]->(b:Person)-[:LocatedIn]->(c:Place) RETURN count(a) AS cnt")
        gremlin_plan = gremlin_to_gir(
            "g.V().hasLabel('Person').as('a').out('Knows').hasLabel('Person').as('b')"
            ".out('LocatedIn').hasLabel('Place').as('c').count()")
        cy_pattern = cypher_plan.patterns()[0].pattern
        gr_pattern = gremlin_plan.patterns()[0].pattern
        assert cy_pattern.num_vertices == gr_pattern.num_vertices == 3
        assert cy_pattern.num_edges == gr_pattern.num_edges == 2
        cy_labels = sorted(v.constraint.label() for v in cy_pattern.vertices)
        gr_labels = sorted(v.constraint.label() for v in gr_pattern.vertices)
        assert cy_labels == gr_labels
