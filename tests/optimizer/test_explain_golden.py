"""Golden explain-plan regression tests.

``GOpt.explain()`` output (optimized logical plan + physical plan + estimated
cost) is snapshotted for a fixed set of micro and LDBC queries on both
backend profiles.  Optimizer refactors that silently change the chosen plan
for any of these queries fail here with a readable diff.

To intentionally re-bless the snapshots after a deliberate optimizer change::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/optimizer/test_explain_golden.py

The snapshots are deterministic: the test graph is generated from a fixed
seed and plan text never depends on hash ordering (verified across
``PYTHONHASHSEED`` values when the suite was introduced).
"""

import os
import pathlib

import pytest

from repro.backend import GraphScopeLikeBackend, Neo4jLikeBackend
from repro.bench.pipelines import build_optimizer
from repro.workloads import bi_queries, ic_queries, qc_queries, qr_queries, qt_queries

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden" / "explain"

#: (query set name, query name) pairs pinned by the snapshots -- one per
#: optimizer technique plus representative LDBC reads and aggregations
PINNED_QUERIES = [
    ("QR", "QR1"),   # FilterIntoPattern
    ("QR", "QR3"),   # FieldTrim
    ("QR", "QR5"),   # JoinToPattern
    ("QT", "QT4"),   # type inference on an untyped message
    ("QC", "QC1a"),  # CBO triangle
    ("QC", "QC2a"),  # CBO square
    ("IC", "IC1"),
    ("IC", "IC5"),
    ("BI", "BI2"),
    ("BI", "BI9"),
]

BACKENDS = ["graphscope", "neo4j"]


@pytest.fixture(scope="module")
def query_sets():
    return {qs.name: qs for qs in
            (qr_queries(), qt_queries(), qc_queries(), ic_queries(), bi_queries())}


@pytest.fixture(scope="module")
def optimizers(ldbc_graph, ldbc_glogue):
    profiles = {
        "graphscope": GraphScopeLikeBackend(ldbc_graph).profile(),
        "neo4j": Neo4jLikeBackend(ldbc_graph).profile(),
    }
    return {kind: build_optimizer(ldbc_graph, "gopt", profile=profile, glogue=ldbc_glogue)
            for kind, profile in profiles.items()}


def _golden_path(backend_kind: str, query_name: str) -> pathlib.Path:
    return GOLDEN_DIR / ("%s__%s.txt" % (backend_kind, query_name))


@pytest.mark.parametrize("backend_kind", BACKENDS)
@pytest.mark.parametrize("set_name,query_name", PINNED_QUERIES)
def test_explain_matches_golden(backend_kind, set_name, query_name,
                                query_sets, optimizers):
    query = query_sets[set_name].get(query_name)
    explained = optimizers[backend_kind].optimize(query.logical_plan()).explain() + "\n"
    path = _golden_path(backend_kind, query_name)
    if os.environ.get("REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(explained)
        return
    assert path.exists(), (
        "missing golden snapshot %s -- run with REGEN_GOLDEN=1 to create it" % path)
    expected = path.read_text()
    assert explained == expected, (
        "explain output for %s on %s changed; if the plan change is intentional, "
        "re-bless with REGEN_GOLDEN=1" % (query_name, backend_kind))
