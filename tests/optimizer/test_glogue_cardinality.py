"""Tests for GLogue statistics and GlogueQuery cardinality estimation."""

import pytest

from repro.gir.expressions import parse_expression
from repro.gir.pattern import PatternGraph
from repro.graph.types import AllType, BasicType, UnionType
from repro.optimizer.cardinality import GlogueQuery, SelectivityConfig
from repro.optimizer.glogue import Glogue


@pytest.fixture()
def tiny_glogue(tiny_graph):
    return Glogue.from_graph(tiny_graph)


@pytest.fixture()
def tiny_gq(tiny_glogue):
    return GlogueQuery(tiny_glogue)


def pattern_of(*spec):
    """Helper: spec is (vertices, edges) where vertices are (name, type|None)."""
    vertices, edges = spec
    pattern = PatternGraph()
    for name, vtype in vertices:
        pattern.add_vertex(name, vtype)
    for name, src, dst, label in edges:
        pattern.add_edge(name, src, dst, label)
    return pattern


class TestGlogueLowOrder:
    def test_vertex_and_edge_counts(self, tiny_glogue):
        assert tiny_glogue.vertex_count("Person") == 4
        assert tiny_glogue.vertex_count("Product") == 3
        assert tiny_glogue.vertex_count("Ghost") == 0
        assert tiny_glogue.edge_count("Knows") == 4
        assert tiny_glogue.triple_count("Person", "Knows", "Person") == 4
        assert tiny_glogue.triple_count("Person", "Purchases", "Product") == 5

    def test_totals(self, tiny_glogue):
        assert tiny_glogue.total_vertices == 9
        assert tiny_glogue.total_edges == 4 + 5 + 4 + 3

    def test_summary_keys(self, tiny_glogue):
        summary = tiny_glogue.summary()
        assert summary["motifs"] == tiny_glogue.num_motifs > 0


class TestGlogueMotifs:
    def test_single_vertex_pattern(self, tiny_glogue):
        pattern = pattern_of([("a", BasicType("Person"))], [])
        assert tiny_glogue.pattern_freq(pattern) == 4.0

    def test_single_edge_pattern(self, tiny_glogue):
        pattern = pattern_of(
            [("a", BasicType("Person")), ("b", BasicType("Product"))],
            [("e", "a", "b", BasicType("Purchases"))],
        )
        assert tiny_glogue.pattern_freq(pattern) == 5.0

    def test_wedge_frequency_exact(self, tiny_graph, tiny_glogue):
        # wedge: (x:Person)-[:Knows]->(c:Person)-[:LocatedIn]->(p:Place)
        pattern = pattern_of(
            [("x", BasicType("Person")), ("c", BasicType("Person")), ("p", BasicType("Place"))],
            [("e1", "x", "c", BasicType("Knows")), ("e2", "c", "p", BasicType("LocatedIn"))],
        )
        # brute-force homomorphism count on the tiny graph
        expected = 0
        for eid in tiny_graph.edges():
            edge = tiny_graph.edge(eid)
            if edge.label != "Knows":
                continue
            expected += len(tiny_graph.out_edges(edge.dst, "LocatedIn"))
        assert tiny_glogue.pattern_freq(pattern) == float(expected)

    def test_triangle_frequency_exact(self, tiny_glogue):
        # the Knows triangle 0->1->2->0 is the only directed Knows triangle
        pattern = pattern_of(
            [("a", BasicType("Person")), ("b", BasicType("Person")), ("c", BasicType("Person"))],
            [("e1", "a", "b", BasicType("Knows")),
             ("e2", "b", "c", BasicType("Knows")),
             ("e3", "c", "a", BasicType("Knows"))],
        )
        assert tiny_glogue.pattern_freq(pattern) == pytest.approx(1.0)

    def test_union_type_pattern_not_catalogued(self, tiny_glogue):
        pattern = pattern_of(
            [("a", BasicType("Person")), ("b", UnionType("Product", "Place")),
             ("c", BasicType("Place"))],
            [("e1", "a", "b", AllType()), ("e2", "a", "c", BasicType("LocatedIn"))],
        )
        assert tiny_glogue.pattern_freq(pattern) is None

    def test_larger_pattern_not_catalogued(self, tiny_glogue):
        pattern = pattern_of(
            [("a", BasicType("Person")), ("b", BasicType("Person")),
             ("c", BasicType("Person")), ("d", BasicType("Person"))],
            [("e1", "a", "b", BasicType("Knows")), ("e2", "b", "c", BasicType("Knows")),
             ("e3", "c", "d", BasicType("Knows"))],
        )
        assert tiny_glogue.pattern_freq(pattern) is None

    def test_missing_motif_reports_zero(self, tiny_glogue):
        # Product has no outgoing Knows edges: this wedge cannot exist
        pattern = pattern_of(
            [("a", BasicType("Product")), ("b", BasicType("Place")), ("c", BasicType("Place"))],
            [("e1", "a", "b", BasicType("ProducedIn")), ("e2", "a", "c", BasicType("ProducedIn"))],
        )
        assert tiny_glogue.pattern_freq(pattern) is not None

    def test_sampled_counts_close_to_exact(self, ldbc_graph):
        exact = Glogue.from_graph(ldbc_graph)
        sampled = Glogue.from_graph(ldbc_graph, sample_ratio=0.5, seed=1)
        assert sampled.num_motifs > 0
        assert sampled.total_edges == exact.total_edges  # low-order stays exact


class TestGlogueQuery:
    def test_exact_lookup_used_for_basic_types(self, tiny_gq):
        pattern = pattern_of(
            [("a", BasicType("Person")), ("b", BasicType("Product"))],
            [("e", "a", "b", BasicType("Purchases"))],
        )
        assert tiny_gq.get_freq(pattern) == 5.0

    def test_vertex_constraint_freq(self, tiny_gq):
        assert tiny_gq.vertex_constraint_freq(BasicType("Person")) == 4
        assert tiny_gq.vertex_constraint_freq(UnionType("Person", "Product")) == 7
        assert tiny_gq.vertex_constraint_freq(AllType()) == 9

    def test_edge_constraint_freq_respects_endpoints(self, tiny_gq):
        assert tiny_gq.edge_constraint_freq(BasicType("LocatedIn")) == 4
        assert tiny_gq.edge_constraint_freq(
            AllType(), BasicType("Product"), BasicType("Place")) == 3

    def test_union_type_estimation_positive(self, tiny_gq):
        pattern = pattern_of(
            [("a", BasicType("Person")), ("b", UnionType("Product", "Person")),
             ("c", BasicType("Place"))],
            [("e1", "a", "b", AllType()), ("e2", "b", "c", AllType())],
        )
        estimate = tiny_gq.get_freq(pattern)
        assert estimate > 0

    def test_estimation_monotone_in_constraints(self, tiny_gq):
        broad = pattern_of(
            [("a", AllType()), ("b", AllType()), ("c", AllType())],
            [("e1", "a", "b", AllType()), ("e2", "b", "c", AllType())],
        )
        narrow = pattern_of(
            [("a", BasicType("Person")), ("b", BasicType("Person")), ("c", BasicType("Place"))],
            [("e1", "a", "b", BasicType("Knows")), ("e2", "b", "c", BasicType("LocatedIn"))],
        )
        assert tiny_gq.get_freq(broad) >= tiny_gq.get_freq(narrow)

    def test_predicates_reduce_estimates(self, tiny_gq):
        pattern = pattern_of([("a", BasicType("Person"))], [])
        filtered = pattern.with_vertex(
            pattern.vertex("a").with_predicate(parse_expression("a.name = 'person-0'")))
        assert tiny_gq.get_freq(filtered) < tiny_gq.get_freq(pattern)

    def test_in_list_selectivity(self, tiny_gq):
        pattern = pattern_of([("a", BasicType("Person"))], [])
        filtered = pattern.with_vertex(
            pattern.vertex("a").with_predicate(parse_expression("a.id IN [0, 1]")))
        assert tiny_gq.get_freq(filtered) == pytest.approx(2.0, rel=0.2)

    def test_id_equality_is_highly_selective(self, tiny_gq):
        pattern = pattern_of([("a", BasicType("Person"))], [])
        filtered = pattern.with_vertex(
            pattern.vertex("a").with_predicate(parse_expression("a.id = 2")))
        assert tiny_gq.get_freq(filtered) == pytest.approx(1.0, rel=0.2)

    def test_path_edge_estimation_grows_with_hops(self, tiny_gq):
        def path_pattern(hops):
            pattern = PatternGraph()
            pattern.add_vertex("a", BasicType("Person"))
            pattern.add_vertex("b", BasicType("Person"))
            pattern.add_edge("p", "a", "b", BasicType("Knows"), min_hops=hops, max_hops=hops)
            return pattern

        assert tiny_gq.get_freq(path_pattern(3)) >= tiny_gq.get_freq(path_pattern(1)) * 0.5

    def test_join_freq_eq1(self, tiny_gq):
        left = pattern_of(
            [("a", BasicType("Person")), ("b", BasicType("Person"))],
            [("e1", "a", "b", BasicType("Knows"))],
        )
        right = pattern_of(
            [("b", BasicType("Person")), ("c", BasicType("Place"))],
            [("e2", "b", "c", BasicType("LocatedIn"))],
        )
        common = pattern_of([("b", BasicType("Person"))], [])
        estimate = tiny_gq.estimate_join_freq(left, right, common)
        assert estimate == pytest.approx(4 * 4 / 4)

    def test_low_order_mode_differs_from_high_order(self, tiny_glogue):
        # wedge with a Product centre: the exact homomorphism count is 9 (sum of
        # squared purchaser counts); the independence estimate of Eq. 2 is 25/3
        wedge = pattern_of(
            [("x", BasicType("Person")), ("p", BasicType("Product")), ("y", BasicType("Person"))],
            [("e1", "x", "p", BasicType("Purchases")),
             ("e2", "y", "p", BasicType("Purchases"))],
        )
        high = GlogueQuery(tiny_glogue, use_high_order=True).get_freq(wedge)
        low = GlogueQuery(tiny_glogue, use_high_order=False).get_freq(wedge)
        assert high == pytest.approx(9.0)
        assert low == pytest.approx(25.0 / 3.0)
        assert abs(high - 9.0) < abs(low - 9.0)

    def test_high_order_triangle_is_exact(self, tiny_glogue):
        triangle = pattern_of(
            [("a", BasicType("Person")), ("b", BasicType("Person")), ("c", BasicType("Person"))],
            [("e1", "a", "b", BasicType("Knows")),
             ("e2", "b", "c", BasicType("Knows")),
             ("e3", "c", "a", BasicType("Knows"))],
        )
        high = GlogueQuery(tiny_glogue, use_high_order=True).get_freq(triangle)
        assert high == pytest.approx(1.0)

    def test_cache_is_used(self, tiny_gq):
        pattern = pattern_of(
            [("a", BasicType("Person")), ("b", BasicType("Person"))],
            [("e", "a", "b", BasicType("Knows"))],
        )
        tiny_gq.clear_cache()
        tiny_gq.get_freq(pattern)
        size_after_first = tiny_gq.cache_size
        tiny_gq.get_freq(pattern)
        assert tiny_gq.cache_size == size_after_first

    def test_selectivity_config(self, tiny_glogue):
        strict = GlogueQuery(tiny_glogue, selectivity=SelectivityConfig(equality=0.01))
        loose = GlogueQuery(tiny_glogue, selectivity=SelectivityConfig(equality=0.5))
        pattern = pattern_of([("a", BasicType("Person"))], [])
        filtered = pattern.with_vertex(
            pattern.vertex("a").with_predicate(parse_expression("a.name = 'x'")))
        assert strict.get_freq(filtered) < loose.get_freq(filtered)
