"""Tests for the physical operator dataclasses and PhysicalPlan helpers."""

import pytest

from repro.gir.expressions import parse_expression
from repro.gir.operators import AggregateCall, AggregateFunction, ProjectItem, SortKey
from repro.graph.types import AllType, BasicType, Direction, UnionType
from repro.optimizer.physical_plan import (
    Aggregate,
    AllDifferent,
    Dedup,
    ExpandEdge,
    ExpandInto,
    ExpandIntersect,
    Filter,
    HashJoin,
    IntersectBranch,
    Limit,
    PathExpand,
    PhysicalPlan,
    Project,
    ScanVertex,
    Sort,
    Union,
)


@pytest.fixture()
def small_plan():
    scan = ScanVertex(tag="a", constraint=BasicType("Person"),
                      predicates=(parse_expression("a.name = 'x'"),), columns=("name",))
    expand = ExpandEdge(anchor_tag="a", edge_tag="e", target_tag="b",
                        direction=Direction.OUT, edge_constraint=UnionType("Knows", "Likes"),
                        target_constraint=AllType(), inputs=(scan,))
    aggregate = Aggregate(keys=(ProjectItem(parse_expression("b"), "b"),),
                          aggregations=(AggregateCall(AggregateFunction.COUNT, None, "cnt"),),
                          mode="local_global", inputs=(expand,))
    sort = Sort(keys=(SortKey(parse_expression("cnt"), ascending=False),), limit=5,
                inputs=(aggregate,))
    return PhysicalPlan(sort)


class TestPhysicalPlan:
    def test_operator_traversal_order(self, small_plan):
        names = [op.name for op in small_plan.operators()]
        assert names == ["ScanVertex", "ExpandEdge", "Aggregate", "Sort"]

    def test_size(self, small_plan):
        assert small_plan.size() == 4

    def test_operators_of_type(self, small_plan):
        assert len(small_plan.operators_of_type(ScanVertex)) == 1
        assert len(small_plan.operators_of_type((ScanVertex, ExpandEdge))) == 2

    def test_explain_indents_children(self, small_plan):
        lines = small_plan.explain().splitlines()
        assert lines[0].startswith("Sort")
        assert lines[-1].lstrip().startswith("Scan")
        assert lines[-1].startswith(" " * 6)

    def test_to_dict_serialises_constraints(self, small_plan):
        payload = small_plan.to_dict()
        scan_payload = payload
        while scan_payload["inputs"]:
            scan_payload = scan_payload["inputs"][0]
        assert scan_payload["op"] == "ScanVertex"
        assert scan_payload["constraint"] == "Person"
        assert scan_payload["columns"] == ["name"]

    def test_with_inputs_creates_new_operator(self, small_plan):
        scan = list(small_plan.operators())[0]
        other = ScanVertex(tag="z", constraint=AllType())
        rewired = small_plan.root.with_inputs((other,))
        assert rewired.inputs == (other,)
        assert small_plan.root.inputs[0] is not other


class TestDescribeStrings:
    def test_graph_operator_descriptions(self):
        scan = ScanVertex(tag="a", constraint=BasicType("Person"))
        assert "Scan a:Person" in scan.describe()
        expand = ExpandEdge(anchor_tag="a", edge_tag="e", target_tag="b",
                            direction=Direction.IN, edge_constraint=BasicType("KNOWS"),
                            target_constraint=BasicType("Person"))
        assert "<-" in expand.describe()
        into = ExpandInto(anchor_tag="a", edge_tag="e", target_tag="b",
                          direction=Direction.OUT, edge_constraint=AllType())
        assert "ExpandInto" in into.describe()
        intersect = ExpandIntersect(
            target_tag="c", target_constraint=AllType(),
            branches=(IntersectBranch("a", "e1", Direction.OUT, AllType()),
                      IntersectBranch("b", "e2", Direction.OUT, AllType())))
        assert "ExpandIntersect" in intersect.describe()
        assert "a, b" in intersect.describe()
        path = PathExpand(anchor_tag="a", path_tag="p", target_tag="b",
                          direction=Direction.OUT, edge_constraint=BasicType("TRANSFERS"),
                          min_hops=2, max_hops=4)
        assert "*2..4" in path.describe()

    def test_relational_operator_descriptions(self):
        assert "HashJoin" in HashJoin(keys=("a",)).describe()
        assert "Filter" in Filter(predicate=parse_expression("a.x = 1")).describe()
        assert "Project" in Project(items=(ProjectItem(parse_expression("a"), "a"),)).describe()
        assert "Limit 3" in Limit(count=3).describe()
        assert "Dedup" in Dedup(tags=("a",)).describe()
        assert "Union" in Union().describe()
        assert "distinct" in Union(distinct=True).describe()
        assert "AllDifferent" in AllDifferent(tags=("e1", "e2")).describe()

    def test_aggregate_description_includes_mode(self):
        aggregate = Aggregate(keys=(), aggregations=(AggregateCall(AggregateFunction.COUNT, None, "c"),),
                              mode="local_global")
        assert "local_global" in aggregate.describe()

    def test_path_expand_close_mode(self):
        path = PathExpand(anchor_tag="a", path_tag="p", target_tag="b",
                          direction=Direction.OUT, edge_constraint=AllType(),
                          min_hops=1, max_hops=2, closes=True)
        assert "into bound" in path.describe()
