"""Tests for the GOptimizer pipeline (RBO + type inference + CBO + lowering)."""

import pytest

from repro.gir import GraphIrBuilder
from repro.gir.operators import AggregateFunction
from repro.gir.pattern import PatternGraph
from repro.graph.types import AllType, BasicType
from repro.lang.cypher import cypher_to_gir
from repro.optimizer.physical_plan import (
    Aggregate,
    AllDifferent,
    Filter,
    HashJoin,
    PhysicalPlan,
    ScanVertex,
    Sort,
    Union,
)
from repro.optimizer.planner import GOptimizer, OptimizerConfig
from repro.optimizer.physical_spec import graphscope_profile, neo4j_profile


@pytest.fixture(scope="module")
def social_optimizer(social_graph):
    return GOptimizer.for_graph(social_graph, profile=graphscope_profile())


def running_example_plan():
    return cypher_to_gir("""
        MATCH (v1)-[e1]->(v2)-[e2]->(v3)
        MATCH (v1)-[e3]->(v3:Place)
        WHERE v3.name = 'China'
        WITH v2, count(v2) AS cnt
        RETURN v2, cnt
        ORDER BY cnt
        LIMIT 10
    """)


class TestPipeline:
    def test_running_example_produces_fig3_shape(self, social_optimizer):
        report = social_optimizer.optimize(running_example_plan())
        physical = report.physical_plan
        names = [op.name for op in physical.operators()]
        assert "ScanVertex" in names
        assert "Aggregate" in names and "Sort" in names
        # the two MATCH clauses were merged into one pattern by JoinToPattern
        assert "HashJoin" not in names
        assert "JoinToPattern" in report.applied_rules
        assert "FilterIntoPattern" in report.applied_rules
        # type inference narrowed the untyped vertices
        search = report.pattern_searches[0]
        assert search.pattern.vertex("v1").constraint.label() == "Person"
        assert "Product" in search.pattern.vertex("v2").constraint.label()

    def test_estimated_cost_reported(self, social_optimizer):
        report = social_optimizer.optimize(running_example_plan())
        assert report.estimated_cost > 0
        assert report.optimization_time >= 0
        assert "estimated cost" in report.explain()

    def test_backend_specific_operators(self, social_graph):
        plan = running_example_plan()
        gs_report = GOptimizer.for_graph(social_graph, profile=graphscope_profile()).optimize(plan)
        neo_report = GOptimizer.for_graph(social_graph, profile=neo4j_profile()).optimize(plan)
        gs_names = {op.name for op in gs_report.physical_plan.operators()}
        neo_names = {op.name for op in neo_report.physical_plan.operators()}
        assert "ExpandIntersect" in gs_names
        assert "ExpandIntersect" not in neo_names
        assert "ExpandInto" in neo_names
        gs_aggs = [op for op in gs_report.physical_plan.operators() if isinstance(op, Aggregate)]
        neo_aggs = [op for op in neo_report.physical_plan.operators() if isinstance(op, Aggregate)]
        assert gs_aggs[0].mode == "local_global"
        assert neo_aggs[0].mode == "global"

    def test_disabling_rbo_keeps_select(self, social_graph):
        config = OptimizerConfig(enable_rbo=False)
        optimizer = GOptimizer.for_graph(social_graph, profile=graphscope_profile(), config=config)
        report = optimizer.optimize(running_example_plan())
        assert report.applied_rules == ()
        names = [op.name for op in report.physical_plan.operators()]
        assert "Filter" in names or "HashJoin" in names

    def test_invalid_pattern_becomes_empty_scan(self, social_graph):
        # Place has no outgoing edges in the social schema
        plan = cypher_to_gir("MATCH (a:Place)-[e]->(b:Person) RETURN count(a) AS cnt")
        optimizer = GOptimizer.for_graph(social_graph, profile=graphscope_profile())
        report = optimizer.optimize(plan)
        scans = [op for op in report.physical_plan.operators() if isinstance(op, ScanVertex)]
        assert any(op.constraint.is_empty for op in scans)

    def test_no_repeated_edge_semantics_adds_all_different(self, social_optimizer):
        plan = cypher_to_gir(
            "MATCH (a:Person)-[e1:Knows]->(b:Person)-[e2:Knows]->(c:Person) RETURN count(a) AS cnt")
        report = social_optimizer.optimize(plan)
        assert any(isinstance(op, AllDifferent) for op in report.physical_plan.operators())

    def test_gremlin_homomorphism_has_no_all_different(self, social_graph):
        from repro.lang.gremlin import gremlin_to_gir

        plan = gremlin_to_gir(
            "g.V().hasLabel('Person').as('a').out('Knows').as('b').out('Knows').as('c').count()")
        optimizer = GOptimizer.for_graph(social_graph, profile=graphscope_profile())
        report = optimizer.optimize(plan)
        assert not any(isinstance(op, AllDifferent) for op in report.physical_plan.operators())

    def test_union_with_shared_subpattern_shares_operator(self, social_graph):
        builder = GraphIrBuilder()
        shared = PatternGraph()
        shared.add_vertex("p", BasicType("Person"))
        shared.add_vertex("f", BasicType("Person"))
        shared.add_edge("k", "p", "f", BasicType("Knows"))
        left = shared.copy()
        left.add_vertex("m", BasicType("Product"))
        left.add_edge("b", "f", "m", BasicType("Purchases"))
        right = shared.copy()
        right.add_vertex("c", BasicType("Place"))
        right.add_edge("l", "f", "c", BasicType("LocatedIn"))
        plan = (builder.match_pattern(left).union(builder.match_pattern(right))
                .group(keys=["p"], agg_func=AggregateFunction.COUNT, alias="cnt")
                .build())
        optimizer = GOptimizer.for_graph(social_graph, profile=graphscope_profile())
        report = optimizer.optimize(plan)
        unions = [op for op in report.physical_plan.operators() if isinstance(op, Union)]
        assert unions
        union = unions[0]
        shared_ids = set()

        def leaf_scans(op):
            found = []
            stack = [op]
            while stack:
                node = stack.pop()
                if not node.inputs:
                    found.append(id(node))
                stack.extend(node.inputs)
            return found

        left_leaves = leaf_scans(union.inputs[0])
        right_leaves = leaf_scans(union.inputs[1])
        # ComSubPattern: both branches bottom out in the *same* operator object
        assert set(left_leaves) & set(right_leaves)

    def test_optimize_pattern_shortcut(self, social_optimizer):
        pattern = PatternGraph()
        pattern.add_vertex("a", AllType())
        pattern.add_vertex("b", BasicType("Place"))
        pattern.add_edge("e", "a", "b", AllType())
        result = social_optimizer.optimize_pattern(pattern)
        assert result.cost > 0

    def test_pattern_planner_override(self, social_graph, social_gq):
        from repro.optimizer.baselines import UserOrderPlanner

        planner = UserOrderPlanner(social_gq, graphscope_profile())
        optimizer = GOptimizer.for_graph(
            social_graph, profile=graphscope_profile(), pattern_planner=planner)
        plan = cypher_to_gir(
            "MATCH (a:Person)-[:Knows]->(b:Person)-[:LocatedIn]->(c:Place) RETURN count(a) AS cnt")
        report = optimizer.optimize(plan)
        search = report.pattern_searches[0]
        assert search.result.plan.vertex_order()[0] == "a"

    def test_physical_plan_serialisation(self, social_optimizer):
        report = social_optimizer.optimize(running_example_plan())
        payload = report.physical_plan.to_dict()
        assert payload["op"] == report.physical_plan.root.name
        assert isinstance(payload["inputs"], list)
