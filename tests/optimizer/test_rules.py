"""Tests for the RBO heuristic rules and the HepPlanner."""

import pytest

from repro.gir import GraphIrBuilder
from repro.gir.operators import (
    AggregateFunction,
    JoinOp,
    LimitOp,
    MatchPatternOp,
    OrderOp,
    ProjectOp,
    SelectOp,
    UnionOp,
)
from repro.gir.pattern import PatternGraph
from repro.graph.types import AllType, BasicType, Direction
from repro.optimizer.rules import (
    ComSubPatternRule,
    FieldTrimRule,
    FilterIntoPatternRule,
    FilterPushDownRule,
    JoinToPatternRule,
    LimitPushThroughProjectRule,
    OrderLimitFusionRule,
    SelectMergeRule,
    default_hep_planner,
)


def two_hop_handle(builder=None, v3_type=None):
    builder = builder or GraphIrBuilder()
    return (builder.pattern_start()
            .get_v(alias="v1", vtype=BasicType("Person"))
            .expand_e(tag="v1", alias="e1", direction=Direction.OUT)
            .get_v(tag="e1", alias="v2", vtype=AllType())
            .expand_e(tag="v2", alias="e2", direction=Direction.OUT)
            .get_v(tag="e2", alias="v3", vtype=v3_type or BasicType("Place"))
            .pattern_end())


class TestFilterIntoPattern:
    def test_single_tag_filter_is_pushed(self):
        plan = two_hop_handle().select("v3.name = 'China'").build()
        rewritten = FilterIntoPatternRule().apply(plan)
        assert rewritten is not None
        assert isinstance(rewritten.root, MatchPatternOp)
        assert len(rewritten.root.pattern.vertex("v3").predicates) == 1

    def test_multi_tag_filter_stays(self):
        plan = two_hop_handle().select("v1.name = v3.name").build()
        assert FilterIntoPatternRule().apply(plan) is None

    def test_mixed_conjunction_splits(self):
        plan = two_hop_handle().select("v3.name = 'x' AND v1.name = v2.name").build()
        rewritten = FilterIntoPatternRule().apply(plan)
        assert isinstance(rewritten.root, SelectOp)
        match = rewritten.root.inputs[0]
        assert len(match.pattern.vertex("v3").predicates) == 1

    def test_edge_filter_is_pushed(self):
        plan = two_hop_handle().select("e1.since > 2020").build()
        rewritten = FilterIntoPatternRule().apply(plan)
        assert len(rewritten.root.pattern.edge("e1").predicates) == 1

    def test_no_match_below_select_no_change(self):
        plan = two_hop_handle().limit(3).select("v3.name = 'x'").build()
        assert FilterIntoPatternRule().apply(plan) is None


class TestJoinToPattern:
    def build_join(self, keys=("v2",)):
        builder = GraphIrBuilder()
        left = (builder.pattern_start()
                .get_v(alias="v1", vtype=BasicType("Person"))
                .expand_e(tag="v1", alias="e1", direction=Direction.OUT)
                .get_v(tag="e1", alias="v2")
                .pattern_end())
        right = (builder.pattern_start()
                 .get_v(alias="v2")
                 .expand_e(tag="v2", alias="e2", direction=Direction.OUT)
                 .get_v(tag="e2", alias="v3", vtype=BasicType("Place"))
                 .pattern_end())
        return builder.join(left, right, keys=list(keys)).build()

    def test_join_on_common_vertex_is_merged(self):
        rewritten = JoinToPatternRule().apply(self.build_join())
        assert rewritten is not None
        assert isinstance(rewritten.root, MatchPatternOp)
        merged = rewritten.root.pattern
        assert set(merged.vertex_names) == {"v1", "v2", "v3"}
        assert set(merged.edge_names) == {"e1", "e2"}

    def test_join_with_unrelated_key_not_merged(self):
        plan = self.build_join(keys=("v1",))  # v1 is not shared by the right side
        assert JoinToPatternRule().apply(plan) is None

    def test_join_above_group_not_merged(self):
        builder = GraphIrBuilder()
        left = (builder.pattern_start()
                .get_v(alias="v1").expand_e(tag="v1", alias="e1").get_v(tag="e1", alias="v2")
                .pattern_end()
                .group(keys=["v2"], agg_func=AggregateFunction.COUNT, alias="cnt"))
        right = (builder.pattern_start()
                 .get_v(alias="v2").expand_e(tag="v2", alias="e2").get_v(tag="e2", alias="v3")
                 .pattern_end())
        plan = left.join(right, keys=["v2"]).build()
        assert JoinToPatternRule().apply(plan) is None


class TestComSubPattern:
    def build_union(self):
        builder = GraphIrBuilder()
        shared = PatternGraph()
        shared.add_vertex("p", BasicType("Person"))
        shared.add_vertex("f", BasicType("Person"))
        shared.add_edge("k", "p", "f", BasicType("Knows"))
        left_pattern = shared.copy()
        left_pattern.add_vertex("m", BasicType("Product"))
        left_pattern.add_edge("b", "f", "m", BasicType("Purchases"))
        right_pattern = shared.copy()
        right_pattern.add_vertex("c", BasicType("Place"))
        right_pattern.add_edge("l", "f", "c", BasicType("LocatedIn"))
        left = builder.match_pattern(left_pattern)
        right = builder.match_pattern(right_pattern)
        return builder.union(left, right).build()

    def test_shared_subpattern_annotated(self):
        rewritten = ComSubPatternRule().apply(self.build_union())
        assert rewritten is not None
        union = rewritten.root
        assert isinstance(union, UnionOp)
        assert union.common_subpattern is not None
        assert set(union.common_subpattern.edge_names) == {"k"}

    def test_no_shared_edges_no_annotation(self):
        builder = GraphIrBuilder()
        a = PatternGraph()
        a.add_vertex("x", BasicType("Person"))
        a.add_vertex("y", BasicType("Place"))
        a.add_edge("e1", "x", "y", BasicType("LocatedIn"))
        b = PatternGraph()
        b.add_vertex("u", BasicType("Person"))
        b.add_vertex("w", BasicType("Product"))
        b.add_edge("e2", "u", "w", BasicType("Purchases"))
        plan = builder.union(builder.match_pattern(a), builder.match_pattern(b)).build()
        assert ComSubPatternRule().apply(plan) is None

    def test_rule_idempotent(self):
        rewritten = ComSubPatternRule().apply(self.build_union())
        assert ComSubPatternRule().apply(rewritten) is None


class TestFieldTrim:
    def test_columns_annotated_and_project_inserted(self):
        plan = (two_hop_handle()
                .group(keys=["v3.name"], agg_func=AggregateFunction.COUNT, alias="cnt")
                .build())
        rewritten = FieldTrimRule().apply(plan)
        assert rewritten is not None
        match = rewritten.patterns()[0]
        assert match.pattern.vertex("v3").columns == frozenset({"name"})
        assert match.pattern.vertex("v1").columns == frozenset()
        projects = [n for n in rewritten.nodes() if isinstance(n, ProjectOp)]
        assert projects, "a trimming PROJECT should have been inserted"

    def test_fixpoint_terminates(self):
        plan = (two_hop_handle()
                .group(keys=["v3.name"], agg_func=AggregateFunction.COUNT, alias="cnt")
                .build())
        planner = default_hep_planner()
        optimized = planner.optimize(plan)
        # running the planner again must not change anything further
        assert planner.optimize(optimized).explain() == optimized.explain()


class TestRelationalRules:
    def test_select_merge(self):
        plan = two_hop_handle().select("v1.age > 3").select("v3.name = 'x'").build()
        rewritten = SelectMergeRule().apply(plan)
        assert rewritten is not None
        selects = [n for n in rewritten.nodes() if isinstance(n, SelectOp)]
        assert len(selects) == 1

    def test_filter_push_down_through_join(self):
        builder = GraphIrBuilder()
        left = (builder.pattern_start()
                .get_v(alias="a").expand_e(tag="a", alias="e1").get_v(tag="e1", alias="b")
                .pattern_end())
        right = (builder.pattern_start()
                 .get_v(alias="b").expand_e(tag="b", alias="e2").get_v(tag="e2", alias="c")
                 .pattern_end())
        plan = builder.join(left, right, keys=["b"]).select("a.x = 1 AND c.y = 2").build()
        rewritten = FilterPushDownRule().apply(plan)
        assert rewritten is not None
        assert isinstance(rewritten.root, JoinOp)
        assert all(isinstance(child, SelectOp) for child in rewritten.root.inputs)

    def test_filter_push_down_through_union(self):
        builder = GraphIrBuilder()
        left = two_hop_handle(builder)
        right = two_hop_handle(builder)
        plan = builder.union(left, right).select("v3.name = 'x'").build()
        rewritten = FilterPushDownRule().apply(plan)
        assert rewritten is not None
        assert isinstance(rewritten.root, UnionOp)

    def test_order_limit_fusion(self):
        plan = two_hop_handle().order(keys=["v3.name"]).limit(4).build()
        rewritten = OrderLimitFusionRule().apply(plan)
        assert rewritten is not None
        assert isinstance(rewritten.root, OrderOp)
        assert rewritten.root.limit == 4

    def test_limit_push_through_project(self):
        plan = two_hop_handle().project(["v3"]).limit(2).build()
        rewritten = LimitPushThroughProjectRule().apply(plan)
        assert rewritten is not None
        assert isinstance(rewritten.root, ProjectOp)
        assert isinstance(rewritten.root.inputs[0], LimitOp)


class TestHepPlanner:
    def test_default_planner_applies_multiple_rules(self):
        builder = GraphIrBuilder()
        left = (builder.pattern_start()
                .get_v(alias="v1", vtype=BasicType("Person"))
                .expand_e(tag="v1", alias="e1", direction=Direction.OUT)
                .get_v(tag="e1", alias="v2")
                .pattern_end())
        right = (builder.pattern_start()
                 .get_v(alias="v2")
                 .expand_e(tag="v2", alias="e2", direction=Direction.OUT)
                 .get_v(tag="e2", alias="v3", vtype=BasicType("Place"))
                 .pattern_end())
        plan = (builder.join(left, right, keys=["v2"])
                .select("v3.name = 'China'")
                .group(keys=["v2"], agg_func=AggregateFunction.COUNT, alias="cnt")
                .order(keys=["cnt"], limit=10)
                .build())
        planner = default_hep_planner()
        optimized = planner.optimize(plan)
        applied = planner.applied_rule_names()
        assert "FilterIntoPattern" in applied
        assert "JoinToPattern" in applied
        # the join was eliminated and the filter sits inside the single pattern
        assert len(optimized.patterns()) == 1
        assert not any(isinstance(n, JoinOp) for n in optimized.nodes())

    def test_planner_is_noop_on_already_optimal_plan(self):
        plan = two_hop_handle().build()
        planner = default_hep_planner()
        optimized = planner.optimize(plan)
        assert optimized.size() == plan.size()
