"""Tests for the CBO: physical specs, cost model, plan search and baselines."""

import pytest

from repro.errors import PlanningError
from repro.gir.pattern import PatternGraph
from repro.graph.types import AllType, BasicType, UnionType
from repro.optimizer.baselines import (
    CypherPlannerBaseline,
    RandomPlanner,
    UserOrderPlanner,
    plan_from_vertex_order,
)
from repro.optimizer.cardinality import GlogueQuery
from repro.optimizer.cost_model import CostModel
from repro.optimizer.physical_plan import (
    ExpandEdge,
    ExpandInto,
    ExpandIntersect,
    HashJoin,
    ScanVertex,
)
from repro.optimizer.physical_spec import (
    ExpandIntersectSpec,
    ExpandIntoSpec,
    HashJoinSpec,
    graphscope_profile,
    graphscope_with_neo4j_costs,
    neo4j_profile,
)
from repro.optimizer.search import (
    PatternSearcher,
    build_pattern_physical,
    enumerate_expand_candidates,
    enumerate_join_candidates,
)


@pytest.fixture()
def gq(tiny_graph):
    from repro.optimizer.glogue import Glogue

    return GlogueQuery(Glogue.from_graph(tiny_graph))


def triangle_pattern():
    pattern = PatternGraph()
    pattern.add_vertex("a", BasicType("Person"))
    pattern.add_vertex("b", BasicType("Person"))
    pattern.add_vertex("c", BasicType("Place"))
    pattern.add_edge("e1", "a", "b", BasicType("Knows"))
    pattern.add_edge("e2", "b", "c", BasicType("LocatedIn"))
    pattern.add_edge("e3", "a", "c", BasicType("LocatedIn"))
    return pattern


def path_pattern(length=3):
    pattern = PatternGraph()
    for index in range(length + 1):
        pattern.add_vertex("v%d" % index, BasicType("Person"))
    for index in range(length):
        pattern.add_edge("e%d" % index, "v%d" % index, "v%d" % (index + 1), BasicType("Knows"))
    return pattern


class TestCandidateEnumeration:
    def test_expand_candidates_for_triangle(self):
        candidates = enumerate_expand_candidates(triangle_pattern())
        assert {c.new_vertex for c in candidates} == {"a", "b", "c"}
        for candidate in candidates:
            assert len(candidate.edges) == 2
            assert candidate.source.num_edges == 1

    def test_expand_candidates_for_path_exclude_middle(self):
        candidates = enumerate_expand_candidates(path_pattern(2))
        # removing the middle vertex would disconnect the pattern
        assert {c.new_vertex for c in candidates} == {"v0", "v2"}

    def test_expand_candidates_single_edge(self):
        candidates = enumerate_expand_candidates(path_pattern(1))
        assert len(candidates) == 2
        assert all(c.source.num_vertices == 1 for c in candidates)

    def test_join_candidates_for_path(self):
        candidates = enumerate_join_candidates(path_pattern(3))
        assert candidates
        for candidate in candidates:
            names = set(candidate.left.edge_names) | set(candidate.right.edge_names)
            assert names == set(path_pattern(3).edge_names)
            assert candidate.keys

    def test_join_candidates_respect_connectivity(self):
        for candidate in enumerate_join_candidates(path_pattern(3)):
            assert candidate.left.is_connected()
            assert candidate.right.is_connected()

    def test_join_candidates_empty_for_single_edge(self):
        assert enumerate_join_candidates(path_pattern(1)) == []


class TestPhysicalSpecs:
    def test_hash_join_cost_is_sum_of_freqs(self, gq):
        spec = HashJoinSpec()
        left = path_pattern(1)
        right = path_pattern(1)
        assert spec.compute_cost(gq, left, right, path_pattern(2)) == pytest.approx(
            gq.get_freq(left) + gq.get_freq(right))

    def test_expand_intersect_cost(self, gq):
        spec = ExpandIntersectSpec()
        pattern = triangle_pattern()
        source = pattern.subpattern_by_edges(["e1"])
        edges = [pattern.edge("e2"), pattern.edge("e3")]
        assert spec.compute_cost(gq, source, edges, pattern) == pytest.approx(
            2 * gq.get_freq(source))

    def test_expand_into_cost_sums_intermediates(self, gq):
        spec = ExpandIntoSpec()
        pattern = triangle_pattern()
        source = pattern.subpattern_by_edges(["e1"])
        edges = [pattern.edge("e2"), pattern.edge("e3")]
        cost = spec.compute_cost(gq, source, edges, pattern)
        assert cost >= gq.get_freq(pattern)

    def test_expand_into_builds_expand_then_into(self, gq):
        spec = ExpandIntoSpec()
        pattern = triangle_pattern()
        source = pattern.subpattern_by_edges(["e1"])
        edges = [pattern.edge("e2"), pattern.edge("e3")]
        scan = ScanVertex(tag="a", constraint=BasicType("Person"))
        op = spec.build_operators(source, edges, pattern, "c", scan)
        assert isinstance(op, ExpandInto)
        assert isinstance(op.inputs[0], ExpandEdge)

    def test_expand_intersect_builds_intersection(self, gq):
        spec = ExpandIntersectSpec()
        pattern = triangle_pattern()
        source = pattern.subpattern_by_edges(["e1"])
        edges = [pattern.edge("e2"), pattern.edge("e3")]
        scan = ScanVertex(tag="a", constraint=BasicType("Person"))
        op = spec.build_operators(source, edges, pattern, "c", scan)
        assert isinstance(op, ExpandIntersect)
        assert len(op.branches) == 2

    def test_single_edge_expansion_is_plain_expand(self, gq):
        spec = ExpandIntersectSpec()
        pattern = path_pattern(1)
        source = pattern.single_vertex_pattern("v0")
        op = spec.build_operators(source, [pattern.edge("e0")], pattern, "v1", None)
        assert isinstance(op, ExpandEdge)

    def test_profiles(self):
        neo = neo4j_profile()
        gs = graphscope_profile()
        assert neo.expand_spec.name == "ExpandInto"
        assert gs.expand_spec.name == "ExpandIntersect"
        assert not neo.include_communication_cost
        assert gs.include_communication_cost
        mismatched = graphscope_with_neo4j_costs()
        assert mismatched.expand_spec.name == "ExpandIntersect"
        assert mismatched.expand_cost_spec.name == "ExpandInto"


class TestCostModel:
    def test_communication_cost_only_for_distributed(self, gq):
        pattern = path_pattern(1)
        distributed = CostModel(gq, graphscope_profile())
        local = CostModel(gq, neo4j_profile())
        assert distributed.communication_cost(pattern) > 0
        assert local.communication_cost(pattern) == 0

    def test_expand_step_cost_positive(self, gq):
        pattern = path_pattern(2)
        model = CostModel(gq, graphscope_profile())
        source = pattern.subpattern_by_edges(["e0"])
        cost = model.expand_step_cost(source, [pattern.edge("e1")], pattern)
        assert cost > 0


class TestPatternSearcher:
    def test_plan_covers_all_edges(self, gq):
        searcher = PatternSearcher(gq, graphscope_profile())
        result = searcher.optimize(triangle_pattern())
        plan = result.plan
        assert set(plan.pattern.edge_names) == {"e1", "e2", "e3"}
        assert result.cost > 0
        assert result.states_explored >= 1

    def test_single_vertex_pattern(self, gq):
        pattern = PatternGraph()
        pattern.add_vertex("a", BasicType("Person"))
        result = PatternSearcher(gq, graphscope_profile()).optimize(pattern)
        assert result.plan.kind == "scan"
        assert result.cost == pytest.approx(4.0)

    def test_disconnected_pattern_rejected(self, gq):
        pattern = PatternGraph()
        pattern.add_vertex("a", BasicType("Person"))
        pattern.add_vertex("b", BasicType("Person"))
        with pytest.raises(PlanningError):
            PatternSearcher(gq, graphscope_profile()).optimize(pattern)

    def test_search_not_worse_than_greedy(self, gq):
        searcher = PatternSearcher(gq, graphscope_profile())
        result = searcher.optimize(triangle_pattern())
        assert result.cost <= result.greedy_cost + 1e-9

    def test_pruning_preserves_plan_quality(self, gq):
        pattern = path_pattern(4)
        pruned = PatternSearcher(gq, graphscope_profile(), enable_pruning=True).optimize(pattern)
        exhaustive = PatternSearcher(gq, graphscope_profile(), enable_pruning=False).optimize(pattern)
        assert pruned.cost == pytest.approx(exhaustive.cost)

    def test_pruning_reduces_or_equals_explored_states(self, gq):
        pattern = path_pattern(4)
        pruned = PatternSearcher(gq, graphscope_profile(), enable_pruning=True).optimize(pattern)
        exhaustive = PatternSearcher(gq, graphscope_profile(), enable_pruning=False).optimize(pattern)
        assert pruned.states_explored <= exhaustive.states_explored

    def test_join_transform_can_be_disabled(self, gq):
        pattern = path_pattern(4)
        no_join = PatternSearcher(gq, graphscope_profile(), enable_join=False).optimize(pattern)
        with_join = PatternSearcher(gq, graphscope_profile(), enable_join=True).optimize(pattern)
        assert with_join.cost <= no_join.cost + 1e-9

    def test_vertex_order_is_consistent(self, gq):
        result = PatternSearcher(gq, graphscope_profile()).optimize(triangle_pattern())
        order = result.plan.vertex_order()
        assert sorted(order) == ["a", "b", "c"]

    def test_lowering_to_physical(self, gq):
        result = PatternSearcher(gq, graphscope_profile()).optimize(triangle_pattern())
        op = build_pattern_physical(result.plan, graphscope_profile())
        kinds = {type(o).__name__ for o in _walk(op)}
        assert "ScanVertex" in kinds
        assert kinds & {"ExpandEdge", "ExpandIntersect", "ExpandInto", "HashJoin"}


def _walk(op):
    yield op
    for child in op.inputs:
        yield from _walk(child)


class TestBaselines:
    def test_plan_from_vertex_order(self, gq):
        pattern = triangle_pattern()
        model = CostModel(gq, neo4j_profile())
        plan = plan_from_vertex_order(pattern, ["a", "b", "c"], model)
        assert set(plan.pattern.edge_names) == set(pattern.edge_names)
        assert plan.children[0].new_vertex == "b"

    def test_plan_from_invalid_order_rejected(self, gq):
        pattern = triangle_pattern()
        model = CostModel(gq, neo4j_profile())
        with pytest.raises(PlanningError):
            plan_from_vertex_order(pattern, ["a", "b"], model)

    def test_cypher_planner_baseline_requires_low_order(self, gq):
        with pytest.raises(PlanningError):
            CypherPlannerBaseline(gq)

    def test_cypher_planner_baseline_produces_plan(self, tiny_graph):
        from repro.optimizer.glogue import Glogue

        low_gq = GlogueQuery(Glogue.from_graph(tiny_graph), use_high_order=False)
        baseline = CypherPlannerBaseline(low_gq)
        result = baseline.optimize(triangle_pattern())
        assert set(result.plan.pattern.edge_names) == {"e1", "e2", "e3"}

    def test_user_order_planner_follows_declaration_order(self, gq):
        planner = UserOrderPlanner(gq, graphscope_profile())
        result = planner.optimize(path_pattern(2))
        assert result.plan.vertex_order() == ["v0", "v1", "v2"]

    def test_random_planner_is_seeded(self, gq):
        profile = graphscope_profile()
        a = RandomPlanner(gq, profile, seed=7).optimize(triangle_pattern())
        b = RandomPlanner(gq, profile, seed=7).optimize(triangle_pattern())
        assert a.plan.vertex_order() == b.plan.vertex_order()

    def test_random_planner_samples_distinct_plans(self, gq):
        planner = RandomPlanner(gq, graphscope_profile(), seed=1)
        samples = planner.sample_plans(path_pattern(3), count=4)
        orders = {tuple(s.plan.vertex_order()) for s in samples}
        assert len(orders) == len(samples) >= 2
