"""Tests for Algorithm 1: type inference and validation."""

import pytest

from repro.errors import TypeInferenceError
from repro.gir.pattern import PatternGraph
from repro.graph.types import AllType, BasicType, UnionType
from repro.optimizer.type_inference import infer_types


class TestPaperExample:
    """The running example of the paper's Fig. 5/6 on the social-commerce schema."""

    @pytest.fixture()
    def pattern(self):
        pattern = PatternGraph()
        pattern.add_vertex("v1", AllType())
        pattern.add_vertex("v2", AllType())
        pattern.add_vertex("v3", BasicType("Place"))
        pattern.add_edge("e1", "v1", "v2", AllType())
        pattern.add_edge("e2", "v2", "v3", AllType())
        pattern.add_edge("e3", "v1", "v3", AllType())
        return pattern

    def test_inferred_constraints_match_figure(self, pattern, tiny_schema):
        result = infer_types(pattern, tiny_schema)
        assert result.valid
        inferred = result.pattern
        assert inferred.vertex("v1").constraint == BasicType("Person")
        assert inferred.vertex("v2").constraint == UnionType("Person", "Product")
        assert inferred.vertex("v3").constraint == BasicType("Place")
        assert inferred.edge("e1").constraint == UnionType("Knows", "Purchases")
        assert inferred.edge("e2").constraint == UnionType("LocatedIn", "ProducedIn")
        assert inferred.edge("e3").constraint == BasicType("LocatedIn")

    def test_counts_narrowed_elements(self, pattern, tiny_schema):
        result = infer_types(pattern, tiny_schema)
        assert result.narrowed_vertices >= 2
        assert result.narrowed_edges >= 3
        assert result.iterations >= pattern.num_vertices


class TestValidation:
    def test_invalid_combination_detected(self, tiny_schema):
        # a Place has no outgoing edges, so Place -> Person cannot be satisfied
        pattern = PatternGraph()
        pattern.add_vertex("a", BasicType("Place"))
        pattern.add_vertex("b", BasicType("Person"))
        pattern.add_edge("e", "a", "b", AllType())
        result = infer_types(pattern, tiny_schema)
        assert not result.valid
        assert result.pattern is None
        with pytest.raises(TypeInferenceError):
            result.require_valid()

    def test_unknown_type_is_invalid(self, tiny_schema):
        pattern = PatternGraph()
        pattern.add_vertex("a", BasicType("Dragon"))
        result = infer_types(pattern, tiny_schema)
        assert not result.valid

    def test_incompatible_edge_label_is_invalid(self, tiny_schema):
        pattern = PatternGraph()
        pattern.add_vertex("a", BasicType("Person"))
        pattern.add_vertex("b", BasicType("Person"))
        pattern.add_edge("e", "a", "b", BasicType("LocatedIn"))
        result = infer_types(pattern, tiny_schema)
        assert not result.valid

    def test_explicit_valid_pattern_unchanged(self, tiny_schema):
        pattern = PatternGraph()
        pattern.add_vertex("a", BasicType("Person"))
        pattern.add_vertex("b", BasicType("Place"))
        pattern.add_edge("e", "a", "b", BasicType("LocatedIn"))
        result = infer_types(pattern, tiny_schema)
        assert result.valid
        assert result.pattern.vertex("a").constraint == BasicType("Person")
        assert result.pattern.edge("e").constraint == BasicType("LocatedIn")


class TestPropagation:
    def test_incoming_adjacency_used(self, tiny_schema):
        # (x) -> (p:Product): x must be a Person via Purchases
        pattern = PatternGraph()
        pattern.add_vertex("x", AllType())
        pattern.add_vertex("p", BasicType("Product"))
        pattern.add_edge("e", "x", "p", AllType())
        result = infer_types(pattern, tiny_schema)
        assert result.pattern.vertex("x").constraint == BasicType("Person")
        assert result.pattern.edge("e").constraint == BasicType("Purchases")

    def test_union_types_preserved_when_multiple_possibilities(self, tiny_schema):
        # (x) -> (p:Place): x can be a Person or a Product
        pattern = PatternGraph()
        pattern.add_vertex("x", AllType())
        pattern.add_vertex("p", BasicType("Place"))
        pattern.add_edge("e", "x", "p", AllType())
        result = infer_types(pattern, tiny_schema)
        assert result.pattern.vertex("x").constraint == UnionType("Person", "Product")

    def test_user_union_constraint_narrowed(self, tiny_schema):
        pattern = PatternGraph()
        pattern.add_vertex("x", UnionType("Product", "Place"))
        pattern.add_vertex("p", BasicType("Place"))
        pattern.add_edge("e", "x", "p", AllType())
        result = infer_types(pattern, tiny_schema)
        assert result.pattern.vertex("x").constraint == BasicType("Product")
        assert result.pattern.edge("e").constraint == BasicType("ProducedIn")

    def test_propagation_chains_through_the_pattern(self, tiny_schema):
        # (a) -> (b) -> (p:Product): b must be Person, hence a must be Person
        pattern = PatternGraph()
        pattern.add_vertex("a", AllType())
        pattern.add_vertex("b", AllType())
        pattern.add_vertex("p", BasicType("Product"))
        pattern.add_edge("e1", "a", "b", AllType())
        pattern.add_edge("e2", "b", "p", AllType())
        result = infer_types(pattern, tiny_schema)
        assert result.pattern.vertex("b").constraint == BasicType("Person")
        assert result.pattern.vertex("a").constraint == BasicType("Person")
        assert result.pattern.edge("e1").constraint == BasicType("Knows")

    def test_path_edges_are_skipped(self, tiny_schema):
        pattern = PatternGraph()
        pattern.add_vertex("a", AllType())
        pattern.add_vertex("b", BasicType("Place"))
        pattern.add_edge("p", "a", "b", AllType(), min_hops=1, max_hops=3)
        result = infer_types(pattern, tiny_schema)
        assert result.valid
        # the path edge gives no information, so 'a' stays unrestricted
        assert result.pattern.vertex("a").constraint.resolve(tiny_schema.vertex_types) == \
            frozenset(tiny_schema.vertex_types)

    def test_ldbc_message_inference(self, ldbc_graph):
        """An untyped vertex with HAS_CREATOR and HAS_TAG edges must be a message."""
        schema = ldbc_graph.schema
        pattern = PatternGraph()
        pattern.add_vertex("m", AllType())
        pattern.add_vertex("p", BasicType("Person"))
        pattern.add_vertex("t", BasicType("Tag"))
        pattern.add_edge("e1", "m", "p", BasicType("HAS_CREATOR"))
        pattern.add_edge("e2", "m", "t", BasicType("HAS_TAG"))
        result = infer_types(pattern, schema)
        assert result.pattern.vertex("m").constraint == UnionType("Post", "Comment")

    def test_predicates_and_columns_preserved(self, tiny_schema):
        from repro.gir.expressions import parse_expression

        pattern = PatternGraph()
        pattern.add_vertex("a", AllType(), predicates=[parse_expression("a.name = 'x'")])
        pattern.add_vertex("p", BasicType("Product"))
        pattern.add_edge("e", "a", "p", AllType())
        result = infer_types(pattern, tiny_schema)
        assert len(result.pattern.vertex("a").predicates) == 1
