"""Property-based tests (hypothesis) for core data structures and invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.gir.expressions import BinaryOp, Literal, Property, parse_expression
from repro.gir.pattern import PatternGraph
from repro.graph.partition import GraphPartitioner
from repro.graph.property_graph import PropertyGraph
from repro.graph.types import TypeConstraint
from repro.optimizer.cardinality import GlogueQuery
from repro.optimizer.glogue import Glogue

TYPE_NAMES = ["Person", "Product", "Place", "Post", "Comment"]

type_sets = st.sets(st.sampled_from(TYPE_NAMES), max_size=len(TYPE_NAMES))
constraints = st.one_of(
    st.just(TypeConstraint.all_types()),
    type_sets.map(TypeConstraint),
)


class TestTypeConstraintAlgebra:
    @given(constraints, constraints)
    def test_intersection_is_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(constraints, constraints, constraints)
    def test_intersection_is_associative(self, a, b, c):
        assert a.intersect(b).intersect(c) == a.intersect(b.intersect(c))

    @given(constraints)
    def test_intersection_with_all_is_identity(self, a):
        assert a.intersect(TypeConstraint.all_types()) == a

    @given(constraints, constraints, st.sampled_from(TYPE_NAMES))
    def test_intersection_contains_iff_both_contain(self, a, b, name):
        assert a.intersect(b).contains(name) == (a.contains(name) and b.contains(name))

    @given(constraints, constraints, st.sampled_from(TYPE_NAMES))
    def test_union_contains_iff_either_contains(self, a, b, name):
        assert a.union_with(b).contains(name) == (a.contains(name) or b.contains(name))

    @given(constraints)
    def test_resolve_subset_of_universe(self, a):
        resolved = a.resolve(TYPE_NAMES)
        assert resolved <= frozenset(TYPE_NAMES)


_RESERVED = {"and", "or", "not", "in", "true", "false", "null"}
identifiers = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6).filter(
    lambda word: word not in _RESERVED)
numbers = st.integers(min_value=-10_000, max_value=10_000)


class TestExpressionRoundTrip:
    @given(identifiers, identifiers, numbers)
    def test_comparison_round_trip(self, tag, key, value):
        text = "%s.%s = %d" % (tag, key, value)
        expr = parse_expression(text)
        assert expr == BinaryOp("=", Property(tag, key), Literal(value))

    @given(identifiers, st.lists(numbers, min_size=1, max_size=5))
    def test_in_list_round_trip(self, tag, values):
        text = "%s.id IN [%s]" % (tag, ", ".join(str(v) for v in values))
        expr = parse_expression(text)
        assert expr == BinaryOp("IN", Property(tag, "id"), Literal(tuple(values)))

    @given(identifiers, numbers, numbers)
    def test_conjunction_referenced_tags(self, tag, a, b):
        expr = parse_expression("%s.x = %d AND %s.y = %d" % (tag, a, tag, b))
        assert expr.referenced_tags() == {tag}
        assert expr.referenced_properties() == {(tag, "x"), (tag, "y")}


def _chain_pattern(names, types):
    pattern = PatternGraph()
    for name, vtype in zip(names, types):
        pattern.add_vertex(name, TypeConstraint.basic(vtype))
    for index in range(len(names) - 1):
        pattern.add_edge("e%d" % index, names[index], names[index + 1])
    return pattern


class TestPatternInvariants:
    @given(st.lists(st.sampled_from(TYPE_NAMES), min_size=2, max_size=5))
    def test_canonical_key_invariant_under_renaming(self, types):
        names_a = ["v%d" % i for i in range(len(types))]
        names_b = ["node_%c" % chr(ord("a") + i) for i in range(len(types))]
        assert _chain_pattern(names_a, types).canonical_key() == \
            _chain_pattern(names_b, types).canonical_key()

    @given(st.lists(st.sampled_from(TYPE_NAMES), min_size=2, max_size=5))
    def test_chain_patterns_are_connected(self, types):
        names = ["v%d" % i for i in range(len(types))]
        pattern = _chain_pattern(names, types)
        assert pattern.is_connected()
        assert pattern.num_edges == pattern.num_vertices - 1

    @given(st.lists(st.sampled_from(TYPE_NAMES), min_size=3, max_size=5),
           st.integers(min_value=0, max_value=3))
    def test_subpattern_by_edges_preserves_membership(self, types, drop_index):
        names = ["v%d" % i for i in range(len(types))]
        pattern = _chain_pattern(names, types)
        kept = [e.name for i, e in enumerate(pattern.edges) if i != drop_index % pattern.num_edges]
        sub = pattern.subpattern_by_edges(kept)
        assert set(sub.edge_names) == set(kept)
        for edge_name in kept:
            edge = pattern.edge(edge_name)
            assert sub.has_vertex(edge.src) and sub.has_vertex(edge.dst)


class TestPartitionerProperties:
    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=0, max_value=10_000))
    def test_partition_in_range_and_stable(self, partitions, vertex):
        partitioner = GraphPartitioner(partitions)
        value = partitioner.partition_of(vertex)
        assert 0 <= value < partitions
        assert value == partitioner.partition_of(vertex)


@st.composite
def small_graphs(draw):
    """Random small typed graphs for statistics invariants."""
    num_vertices = draw(st.integers(min_value=2, max_value=12))
    graph = PropertyGraph()
    types = [draw(st.sampled_from(TYPE_NAMES[:3])) for _ in range(num_vertices)]
    for vertex_type in types:
        graph.add_vertex(vertex_type)
    num_edges = draw(st.integers(min_value=1, max_value=20))
    for _ in range(num_edges):
        src = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        dst = draw(st.integers(min_value=0, max_value=num_vertices - 1))
        if src == dst:
            continue
        graph.add_edge(src, dst, "REL")
    return graph


class TestStatisticsInvariants:
    @settings(max_examples=25, deadline=None)
    @given(small_graphs())
    def test_low_order_counts_sum_to_totals(self, graph):
        glogue = Glogue.from_graph(graph)
        assert sum(glogue.vertex_freq.values()) == graph.num_vertices
        assert sum(glogue.triple_freq.values()) == graph.num_edges
        assert sum(glogue.label_freq.values()) == graph.num_edges

    @settings(max_examples=25, deadline=None)
    @given(small_graphs())
    def test_estimates_are_non_negative(self, graph):
        gq = GlogueQuery(Glogue.from_graph(graph))
        pattern = PatternGraph()
        pattern.add_vertex("a", TypeConstraint.basic("Person"))
        pattern.add_vertex("b", TypeConstraint.all_types())
        pattern.add_edge("e", "a", "b")
        assert gq.get_freq(pattern) >= 0.0

    @settings(max_examples=20, deadline=None)
    @given(small_graphs())
    def test_exact_single_edge_frequency_matches_graph(self, graph):
        gq = GlogueQuery(Glogue.from_graph(graph))
        pattern = PatternGraph()
        pattern.add_vertex("a", TypeConstraint.all_types())
        pattern.add_vertex("b", TypeConstraint.all_types())
        pattern.add_edge("e", "a", "b", TypeConstraint.basic("REL"))
        assert gq.get_freq(pattern) == float(graph.num_edges)
