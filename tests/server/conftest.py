"""Fixtures for the HTTP serving tests: a live server on an ephemeral port."""

import pytest

from repro.client import GraphClient
from repro.datasets import social_commerce_graph
from repro.server import GraphHTTPServer
from repro.service import GraphService


@pytest.fixture(scope="module")
def serving_graph():
    return social_commerce_graph(num_persons=80, num_products=30,
                                 num_places=8, seed=3)


@pytest.fixture(scope="module")
def serving_service(serving_graph):
    return GraphService(serving_graph, backend="graphscope", num_partitions=2)


@pytest.fixture()
def server(serving_service):
    """A running server on an ephemeral port; stopped (and leak-checked)
    after each test."""
    with GraphHTTPServer(serving_service, port=0, max_queue_depth=64,
                         sweep_interval_seconds=0.2) as running:
        yield running


@pytest.fixture()
def client(server):
    with GraphClient(server.host, server.port, tenant="tester") as remote:
        yield remote
