"""End-to-end: GraphClient against a live server on an ephemeral port.

The heart of the wire-layer contract: remote execution returns rows
*identical* to an in-process ``Session.run()`` for the differential-suite
queries, overload produces 429 + positive ``Retry-After``, and ``/metrics``
exposes the serving counters.
"""

import json
import threading
import time

import pytest

from repro.client import GraphClient
from repro.errors import (
    ExecutionTimeout,
    NotFoundError,
    ParseError,
    ServiceOverloadedError,
)
from repro.server import GraphHTTPServer
from repro.service import GraphService
from repro.testing.faults import FaultInjector
from repro.workloads import bi_queries, ic_queries, qr_queries, qt_queries

#: every differential-suite query expressible as Cypher text (plan-factory
#: queries have no wire form; the wire protocol is text-in)
WIRE_QUERIES = [(qs.name, q) for qs in
                (qr_queries(), qt_queries(), ic_queries(), bi_queries())
                for q in qs if q.cypher is not None]


def jsonable(rows):
    """What a row list looks like after one JSON round-trip (tuples->lists)."""
    return json.loads(json.dumps(rows))


@pytest.fixture(scope="module")
def ldbc_service(ldbc_graph):
    return GraphService(ldbc_graph, backend="graphscope", num_partitions=4)


# function-scoped on purpose: the per-test thread-leak fixture must see the
# keep-alive connection threads die with their client at the end of each test
@pytest.fixture()
def ldbc_server(ldbc_service):
    with GraphHTTPServer(ldbc_service, max_queue_depth=64) as server:
        yield server


@pytest.fixture()
def ldbc_client(ldbc_server):
    with GraphClient(ldbc_server.host, ldbc_server.port, tenant="e2e") as client:
        yield client


@pytest.mark.parametrize("set_name,query", WIRE_QUERIES,
                         ids=["%s__%s" % (s, q.name) for s, q in WIRE_QUERIES])
def test_remote_rows_match_in_process(ldbc_service, ldbc_client, set_name, query):
    with ldbc_service.session() as session:
        local = session.run(query.cypher, parameters=query.parameters or None)
        expected = jsonable(local.fetch_all())
    remote = ldbc_client.run(query.cypher, parameters=query.parameters or None)
    assert remote.rows == expected
    assert remote.row_count == len(expected)
    # the work counters rode the wire
    assert remote.metrics is not None
    assert remote.metrics["operators_executed"] >= 1


def test_cursor_stream_matches_materialized(ldbc_service, ldbc_client):
    query = "MATCH (p:Person)-[:KNOWS]->(f:Person) RETURN f.firstName AS n"
    with ldbc_service.session() as session:
        expected = jsonable(session.run(query).fetch_all())
    with ldbc_client.session() as remote_session:
        with remote_session.cursor(query, fetch_size=7) as cursor:
            rows = cursor.fetch_all()
        assert rows == expected
        assert cursor.metrics is not None  # final chunk carries metrics
        assert cursor.peak_held_rows is not None


def test_prepared_statement_over_the_wire(ldbc_service, ldbc_client):
    template = "MATCH (p:Person) WHERE p.id = $pid RETURN p.firstName AS name"
    with ldbc_client.session() as remote_session:
        prepared = remote_session.prepare(template)
        assert prepared.deferred
        assert prepared.parameter_names == ["pid"]
        with ldbc_service.session() as session:
            for pid in (1, 2, 3):
                expected = jsonable(
                    session.run(template, parameters={"pid": pid}).fetch_all())
                assert prepared.run({"pid": pid}).rows == expected


def test_gremlin_over_the_wire(ldbc_service, ldbc_client):
    query = "g.V().hasLabel('Person').count()"
    with ldbc_service.session() as session:
        expected = jsonable(session.run(query, language="gremlin").fetch_all())
    assert ldbc_client.run(query, language="gremlin").rows == expected


def test_explain_over_the_wire(ldbc_service, ldbc_client):
    query = "MATCH (p:Person)-[:KNOWS]->(f:Person) RETURN f.firstName"
    local = ldbc_service.optimize(query).explain()
    remote = ldbc_client.explain(query)
    assert remote.plan == local
    assert remote.estimated_cost is not None and remote.estimated_cost > 0


def test_max_rows_truncation_flag(ldbc_client):
    result = ldbc_client.run("MATCH (p:Person) RETURN p.firstName AS n",
                             max_rows=3)
    assert result.row_count == 3
    assert result.truncated
    assert result.warning


def test_parse_error_maps_to_400(ldbc_client):
    with pytest.raises(ParseError):
        ldbc_client.run("MATCH p:Person RETURN")


def test_unknown_cursor_maps_to_404(ldbc_client):
    with pytest.raises(NotFoundError):
        ldbc_client.call("GET", "/v1/cursors/c-does-not-exist/fetch?n=5")


def test_deadline_header_maps_to_504(ldbc_client):
    with pytest.raises(ExecutionTimeout):
        ldbc_client.run(
            "MATCH (a:Person)-[:KNOWS]->(b:Person)-[:KNOWS]->(c:Person)"
            "-[:KNOWS]->(d:Person) RETURN count(d) AS c",
            deadline_seconds=0.0005)


def test_foreign_tenant_cannot_touch_sessions(ldbc_server, ldbc_client):
    with ldbc_client.session() as remote_session:
        intruder = GraphClient(ldbc_server.host, ldbc_server.port,
                               tenant="intruder")
        with pytest.raises(NotFoundError):
            intruder.call("POST", "/v1/queries",
                          {"session_id": remote_session.session_id,
                           "query": "MATCH (p:Person) RETURN p.id"})
        intruder.close()


def test_quota_breach_returns_429_with_positive_retry_after(serving_service):
    """Induced per-tenant quota breach: one slow in-flight query (stalled at
    the server.request fault point while holding its admission slot) plus a
    second request from the same tenant -> 429 + Retry-After."""
    injector = FaultInjector(seed=13)
    injector.add_rule("server.request", action="sleep", rate=1.0, seconds=0.6,
                      max_fires=1, match={"endpoint": "queries"})
    with GraphHTTPServer(serving_service, per_tenant_limit=1,
                         max_queue_depth=64) as server:
        slow = GraphClient(server.host, server.port, tenant="greedy")
        fast = GraphClient(server.host, server.port, tenant="greedy")
        other = GraphClient(server.host, server.port, tenant="patient")
        with injector:
            worker = threading.Thread(
                target=lambda: slow.run("MATCH (p:Person) RETURN p.name AS n"))
            worker.start()
            time.sleep(0.2)  # the slow query is now asleep inside its slot
            status, headers, body = fast.request(
                "POST", "/v1/queries",
                {"query": "MATCH (p:Person) RETURN p.name AS n"})
            assert status == 429
            assert int(headers["retry-after"]) > 0
            error = json.loads(body.decode())["error"]
            assert error["type"] == "ServiceOverloadedError"
            assert error["retry_after_seconds"] > 0
            with pytest.raises(ServiceOverloadedError) as info:
                fast.run("MATCH (p:Person) RETURN p.name AS n")
            assert info.value.retry_after_seconds > 0
            # a different tenant is NOT over quota
            assert other.run("MATCH (p:Person) RETURN p.name AS n").row_count > 0
            worker.join()
        # after the slot frees, the same tenant is served again
        assert fast.run("MATCH (p:Person) RETURN p.name AS n").row_count > 0
        metrics_text = slow.metrics_text()
        assert 'repro_tenant_rejected_total{tenant="greedy"}' in metrics_text
        for client in (slow, fast, other):
            client.close()


def test_metrics_exposition_contract(serving_service):
    with GraphHTTPServer(serving_service, max_queue_depth=16) as server:
        client = GraphClient(server.host, server.port, tenant="scraper")
        client.run("MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS n")
        client.run("MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS n")
        with client.session() as session:
            with session.cursor("MATCH (p:Person) RETURN p.name AS n",
                                fetch_size=50) as cursor:
                cursor.fetch_all()
        text = client.metrics_text()
        for required in (
            "repro_plan_cache_hit_rate",
            "repro_plan_cache_hits",
            "repro_admission_queue_depth",
            "repro_admission_admitted_total",
            "repro_sessions_open",
            "repro_cursors_open",
            "repro_peak_held_rows_max",
            "repro_worker_busy_seconds_total",
            "repro_queries_executed_total",
            'repro_requests_total{endpoint="queries",tenant="scraper"}',
            'repro_rows_returned_total{tenant="scraper"}',
        ):
            assert required in text, "missing %s in exposition" % required
        # hit rate is live: the repeated query hit the shared plan cache
        hit_rate = float([line for line in text.splitlines()
                          if line.startswith("repro_plan_cache_hit_rate")][0]
                         .split()[-1])
        assert 0.0 <= hit_rate <= 1.0
        client.close()


def test_healthz(client):
    assert client.healthz() == {"status": "ok"}


def test_session_close_via_delete(client, server):
    session = client.session()
    cursor = session.cursor("MATCH (p:Person) RETURN p.name AS n", fetch_size=4)
    assert len(cursor.fetch_many(4)) == 4
    session.close()
    assert server.app.registry.stats()["cursors_open"] == 0
    with pytest.raises(NotFoundError):
        session.run("MATCH (p:Person) RETURN p.name AS n")
