"""Cursor/session lifecycle: TTL eviction must close in-process cursors,
and a client disappearing mid-fetch must leak neither cursors nor threads."""

import time

import pytest

from repro.client import GraphClient
from repro.errors import NotFoundError
from repro.server import GraphHTTPServer
from repro.server.registry import SessionRegistry


QUERY = "MATCH (p:Person) RETURN p.name AS n"


def open_cursor(registry, service, tenant="t"):
    session = service.session()
    entry = registry.create_session(tenant, session)
    cursor = session.run(QUERY)
    held = registry.register_cursor(entry, QUERY, cursor)
    return entry, held


def test_cursor_ttl_eviction_closes_the_cursor(serving_service):
    registry = SessionRegistry(session_ttl_seconds=60.0, cursor_ttl_seconds=0.05)
    entry, held = open_cursor(registry, serving_service)
    assert held.cursor.fetch_one() is not None
    time.sleep(0.08)
    sessions, cursors = registry.evict_expired()
    assert (sessions, cursors) == (0, 1)
    assert held.cursor.closed
    assert registry.stats()["cursors_open"] == 0
    assert registry.stats()["cursors_evicted_total"] == 1
    with pytest.raises(NotFoundError):
        registry.get_cursor(held.cursor_id)
    # the owning session no longer lists it
    assert entry.cursor_ids == []


def test_session_expiry_closes_owned_cursors(serving_service):
    registry = SessionRegistry(session_ttl_seconds=0.05, cursor_ttl_seconds=60.0)
    entry, held = open_cursor(registry, serving_service)
    time.sleep(0.08)
    sessions, cursors = registry.evict_expired()
    assert (sessions, cursors) == (1, 1)
    assert held.cursor.closed
    assert entry.session.closed
    assert registry.stats() == {"sessions_open": 0, "cursors_open": 0,
                                "sessions_expired_total": 1,
                                "cursors_evicted_total": 1}


def test_touch_keeps_entries_alive(serving_service):
    registry = SessionRegistry(session_ttl_seconds=0.2, cursor_ttl_seconds=0.2)
    entry, held = open_cursor(registry, serving_service)
    for _ in range(3):
        time.sleep(0.1)
        registry.get_cursor(held.cursor_id)  # touches cursor AND owning session
        registry.evict_expired()
    assert registry.stats()["cursors_open"] == 1
    assert registry.stats()["sessions_open"] == 1
    registry.close_all()
    assert held.cursor.closed


def test_close_session_closes_cursors_and_is_tenant_scoped(serving_service):
    registry = SessionRegistry()
    entry, held = open_cursor(registry, serving_service, tenant="a")
    with pytest.raises(NotFoundError):
        registry.close_session(entry.session_id, tenant="b")
    assert registry.close_session(entry.session_id, tenant="a") == 1
    assert held.cursor.closed


def test_close_all_refuses_new_registrations(serving_service):
    registry = SessionRegistry()
    entry, held = open_cursor(registry, serving_service)
    registry.close_all()
    assert held.cursor.closed and entry.session.closed
    session = serving_service.session()
    with pytest.raises(NotFoundError):
        registry.create_session("t", session)
    assert session.closed  # refused registration must not strand the session


def test_client_disappearing_mid_fetch_leaks_nothing(serving_service):
    """The regression the TTL sweeper exists for: a remote client opens a
    cursor, pulls one chunk, and vanishes without closing anything.  The
    sweeper must close the server-held cursor; the module-level thread-leak
    fixture asserts no runtime threads survive the server either."""
    with GraphHTTPServer(serving_service, cursor_ttl_seconds=0.2,
                         session_ttl_seconds=0.2,
                         sweep_interval_seconds=0.05) as server:
        client = GraphClient(server.host, server.port, tenant="ghost")
        session = client.session()
        cursor = session.cursor(QUERY, fetch_size=5)
        first = cursor.fetch_many(5)
        assert len(first) == 5
        # the in-process cursor the server holds for this client
        held = list(server.app.registry._cursors.values())[0]
        assert not held.cursor.closed
        client.close()  # vanish: no cursor DELETE, no session DELETE

        deadline = time.monotonic() + 5.0
        while (server.app.registry.stats()["cursors_open"]
               and time.monotonic() < deadline):
            time.sleep(0.02)
        stats = server.app.registry.stats()
        assert stats["cursors_open"] == 0
        assert stats["sessions_open"] == 0
        assert held.cursor.closed
        assert stats["cursors_evicted_total"] >= 1


def test_server_shutdown_closes_held_cursors(serving_service):
    server = GraphHTTPServer(serving_service, cursor_ttl_seconds=60.0)
    server.start()
    client = GraphClient(server.host, server.port, tenant="t")
    session = client.session()
    cursor = session.cursor(QUERY, fetch_size=3)
    assert len(cursor.fetch_many(3)) == 3
    held = list(server.app.registry._cursors.values())[0]
    client.close()
    server.stop()
    assert held.cursor.closed
    assert server.app.registry.stats()["cursors_open"] == 0
