"""The error <-> status contract, pinned as a table in both directions."""

import pytest

from repro.errors import (
    CancelledError,
    ExecutionTimeout,
    GirBuildError,
    GOptError,
    GraphError,
    NotFoundError,
    ParseError,
    PlanningError,
    ServiceOverloadedError,
    TypeInferenceError,
    WorkerFailure,
)
from repro.server.protocol import (
    error_to_wire,
    exception_from_wire,
    retry_after_header,
    status_for_exception,
)

STATUS_TABLE = [
    (ParseError("bad text"), 400),
    (GirBuildError("bad plan"), 400),
    (TypeInferenceError("invalid pattern"), 400),
    (PlanningError("cannot plan"), 400),
    (GraphError("bad graph access"), 400),      # generic GOptError subclass
    (GOptError("anything query-side"), 400),
    (NotFoundError("no such cursor"), 404),
    (ServiceOverloadedError("queue full", retry_after_seconds=0.4), 429),
    (CancelledError("client went away"), 499),
    (WorkerFailure("worker 3 died", worker_id=3), 503),
    (ExecutionTimeout("deadline exceeded"), 504),
    (RuntimeError("a server bug"), 500),
    (KeyError("another server bug"), 500),
]


@pytest.mark.parametrize("exc,status", STATUS_TABLE,
                         ids=[type(e).__name__ for e, _ in STATUS_TABLE])
def test_status_for_exception(exc, status):
    assert status_for_exception(exc) == status
    wire = error_to_wire(exc)
    assert wire.status == status
    assert wire.type == type(exc).__name__
    assert wire.message


REBUILD_TABLE = [
    # (server-side exception, type the client must raise)
    (ParseError("bad text"), ParseError),
    (GirBuildError("bad plan"), GirBuildError),
    (TypeInferenceError("invalid pattern"), TypeInferenceError),
    (PlanningError("cannot plan"), PlanningError),
    (NotFoundError("no such cursor"), NotFoundError),
    (ServiceOverloadedError("queue full"), ServiceOverloadedError),
    (CancelledError("client went away"), CancelledError),
    (WorkerFailure("worker 3 died", worker_id=3), WorkerFailure),
    (ExecutionTimeout("deadline exceeded"), ExecutionTimeout),
    # types outside the protocol table collapse to the GOptError base
    (GraphError("bad graph access"), GOptError),
    (GOptError("anything query-side"), GOptError),
    (RuntimeError("a server bug"), GOptError),
]


@pytest.mark.parametrize("exc,expected", REBUILD_TABLE,
                         ids=[type(e).__name__ for e, _ in REBUILD_TABLE])
def test_client_rebuilds_the_same_exception_type(exc, expected):
    """Server-side exception -> wire -> client-side exception is type-stable
    for every type the protocol names (others collapse to GOptError)."""
    rebuilt = exception_from_wire(error_to_wire(exc))
    assert isinstance(rebuilt, expected)
    assert isinstance(rebuilt, GOptError)


def test_overload_keeps_its_retry_after_hint():
    exc = ServiceOverloadedError("queue full", retry_after_seconds=0.4)
    wire = error_to_wire(exc)
    assert wire.retry_after_seconds == pytest.approx(0.4)
    rebuilt = exception_from_wire(wire)
    assert isinstance(rebuilt, ServiceOverloadedError)
    assert rebuilt.retry_after_seconds == pytest.approx(0.4)


def test_retry_after_header_rounds_up_and_only_on_429():
    assert retry_after_header(error_to_wire(
        ServiceOverloadedError("x", retry_after_seconds=0.4))) == "1"
    assert retry_after_header(error_to_wire(
        ServiceOverloadedError("x", retry_after_seconds=2.3))) == "3"
    assert retry_after_header(error_to_wire(ParseError("x"))) is None


def test_unknown_type_falls_back_to_status_mapping():
    from repro.server.wire import ErrorWire
    rebuilt = exception_from_wire(ErrorWire(type="Mystery", message="m", status=504))
    assert isinstance(rebuilt, ExecutionTimeout)
    rebuilt = exception_from_wire(ErrorWire(type="Mystery", message="m", status=404))
    assert isinstance(rebuilt, NotFoundError)
    rebuilt = exception_from_wire(ErrorWire(type="Mystery", message="m", status=500))
    assert type(rebuilt) is GOptError
