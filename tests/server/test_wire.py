"""Wire-model tests: JSON round-trips and field parity with the in-process
result/explain objects, plus the ``to_dict`` observability satellites."""

import json

import pytest

from repro.backend.base import ExecutionMetrics
from repro.plan_cache import PlanCache, PlanCacheInfo
from repro.server.wire import (
    CursorChunkWire,
    CursorWire,
    ErrorWire,
    ExplainPlanWire,
    PreparedWire,
    QueryResultWire,
    SessionWire,
    columns_of,
)
from repro.service import GraphService
from repro.service.admission import AdmissionController


def roundtrip(model):
    """to_dict -> json -> from_dict must reproduce the model exactly."""
    payload = json.loads(json.dumps(model.to_dict()))
    return type(model).from_dict(payload)


METRICS = ExecutionMetrics(
    elapsed_seconds=0.25, intermediate_results=10, edges_traversed=20,
    vertices_scanned=30, tuples_shuffled=5, operators_executed=4,
    cells_produced=8)


def test_query_result_roundtrip():
    model = QueryResultWire(
        query="MATCH (p) RETURN p.name AS n", rows=[{"n": "ann"}, {"n": "bob"}],
        row_count=2, columns=["n"], execution_time_ms=1.5, truncated=True,
        warning="truncated", metrics=METRICS.as_dict(), peak_held_rows=7,
        degraded=False)
    assert roundtrip(model) == model


def test_query_result_field_parity_with_execution_metrics():
    """Every counter of ExecutionMetrics.as_dict() must survive the wire."""
    model = QueryResultWire.from_rows("q", [{"a": 1, "b": 2}], metrics=METRICS,
                                      peak_held_rows=3)
    assert model.row_count == 1
    assert model.columns == ["a", "b"]
    assert model.execution_time_ms == pytest.approx(250.0)
    assert model.peak_held_rows == 3
    assert set(model.metrics) == set(METRICS.as_dict())
    assert model.metrics["edges_traversed"] == 20
    back = roundtrip(model)
    assert back.metrics == METRICS.as_dict()
    assert back.column("a") == [1]
    assert not back.is_empty and back.column_count == 2


def test_columns_of_merges_heterogeneous_rows():
    assert columns_of([{"a": 1}, {"b": 2, "a": 3}, {}]) == ["a", "b"]
    assert columns_of([]) == []


def test_explain_roundtrip_and_parity(serving_service):
    report = serving_service.optimize(
        "MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS n")
    model = ExplainPlanWire.from_report("q", report)
    assert model.plan == report.explain()
    assert model.estimated_cost == report.estimated_cost
    assert model.plan_json["applied_rules"] == list(report.applied_rules)
    assert "physical plan" in model.plan
    assert roundtrip(model) == model


def test_session_prepared_cursor_chunk_roundtrips():
    for model in (
        SessionWire(session_id="s-1", tenant="t", engine="vectorized",
                    ttl_seconds=12.5),
        PreparedWire(statement_id="s-1-q1", query="q", language="cypher",
                     deferred=True, parameter_names=["a", "b"]),
        CursorWire(cursor_id="c-9", session_id="s-1", query="q",
                   ttl_seconds=3.0),
        CursorChunkWire(cursor_id="c-9", rows=[{"x": None}], row_count=1,
                        exhausted=True, timed_out=False,
                        metrics=METRICS.as_dict(), peak_held_rows=0),
        ErrorWire(type="ParseError", message="boom", status=400,
                  retry_after_seconds=None),
        ErrorWire(type="ServiceOverloadedError", message="full", status=429,
                  retry_after_seconds=0.25),
    ):
        assert roundtrip(model) == model


def test_from_dict_rejects_missing_required_fields():
    with pytest.raises(ValueError, match="missing field 'rows'"):
        QueryResultWire.from_dict({"query": "q", "row_count": 0, "columns": []})
    with pytest.raises(ValueError, match="missing field 'error'"):
        ErrorWire.from_dict({})


# -- the to_dict() observability satellites ------------------------------------

def test_admission_stats_to_dict():
    controller = AdmissionController(max_concurrent=2, max_queue_depth=2)
    tickets = [controller.admit("a"), controller.admit("a")]
    controller.begin(tickets[0])
    stats = controller.stats().to_dict()
    assert stats == {"admitted": 2, "rejected": 0, "expired": 0,
                     "completed": 0, "in_flight": 2, "running": 1, "queued": 1}
    assert json.loads(json.dumps(stats)) == stats
    for ticket in tickets:
        controller.finish(ticket)


def test_plan_cache_info_to_dict_and_hit_rate():
    cache = PlanCache(4)
    cache.put("k", "v")
    cache.get("k")
    cache.get("missing")
    info = cache.info().to_dict()
    assert info["hits"] == 1 and info["misses"] == 1
    assert info["hit_rate"] == pytest.approx(0.5)
    assert info["enabled"] is True
    assert json.loads(json.dumps(info)) == info
    disabled = PlanCacheInfo.disabled()
    assert disabled.hit_rate == 0.0
    assert disabled.to_dict()["enabled"] is False


def test_service_level_to_dict_needs_no_private_access(serving_graph):
    """/metrics reads cache_info().to_dict() straight off the service."""
    service = GraphService(serving_graph, backend="neo4j", plan_cache_size=8)
    service.optimize("MATCH (p:Person) RETURN p.name")
    service.optimize("MATCH (p:Person) RETURN p.name")
    info = service.cache_info().to_dict()
    assert info["hits"] == 1 and info["misses"] == 1
    assert info["hit_rate"] == pytest.approx(0.5)
