"""Admission control: bounded queueing, quotas, deadlines, fast rejection."""

import threading

import pytest

from repro import GraphService
from repro.errors import GOptError, ServiceOverloadedError
from repro.service import AdmissionController, ConcurrentExecutor, QueryRequest

QUERY = "MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS friend"


@pytest.fixture(scope="module")
def service(social_graph):
    return GraphService(social_graph, backend="graphscope", num_partitions=2)


class TestAdmissionController:
    def test_rejects_beyond_capacity_with_retry_hint(self):
        controller = AdmissionController(max_concurrent=2, max_queue_depth=1)
        tickets = [controller.admit() for _ in range(3)]  # 2 running + 1 queued
        with pytest.raises(ServiceOverloadedError) as excinfo:
            controller.admit()
        assert excinfo.value.retry_after_seconds > 0
        stats = controller.stats()
        assert stats.admitted == 3 and stats.rejected == 1
        controller.finish(tickets[0])
        ticket = controller.admit()  # a freed slot admits again
        for other in tickets[1:] + [ticket]:
            controller.finish(other)
        assert controller.stats().in_flight == 0

    def test_per_client_quota(self):
        controller = AdmissionController(max_concurrent=8, per_client_limit=2)
        held = [controller.admit("tenant-a") for _ in range(2)]
        with pytest.raises(ServiceOverloadedError):
            controller.admit("tenant-a")
        other = controller.admit("tenant-b")  # other clients are unaffected
        anonymous = controller.admit()        # and so are unattributed requests
        controller.finish(held[0])
        held.append(controller.admit("tenant-a"))  # quota freed by finish
        for ticket in held[1:] + [other, anonymous]:
            controller.finish(ticket)

    def test_queue_deadline_expires_stale_requests(self):
        controller = AdmissionController(max_concurrent=1,
                                         queue_timeout_seconds=0.05)
        ticket = controller.admit()
        ticket.admitted_at -= 1.0  # it has been queued for a second
        with pytest.raises(ServiceOverloadedError):
            controller.begin(ticket)
        stats = controller.stats()
        assert stats.expired == 1
        assert stats.in_flight == 0  # the expired ticket released its slot
        fresh = controller.admit()
        controller.begin(fresh)  # a fresh request starts normally
        controller.finish(fresh)

    def test_finish_is_idempotent(self):
        controller = AdmissionController(max_concurrent=1)
        ticket = controller.admit()
        controller.begin(ticket)
        controller.finish(ticket)
        controller.finish(ticket)
        stats = controller.stats()
        assert stats.in_flight == 0 and stats.completed == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(GOptError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(GOptError):
            AdmissionController(max_concurrent=1, max_queue_depth=-1)
        with pytest.raises(GOptError):
            AdmissionController(max_concurrent=1, per_client_limit=0)


class TestExecutorAdmission:
    def test_submit_fast_rejects_when_saturated(self, service):
        with ConcurrentExecutor(service, max_workers=1,
                                max_queue_depth=0) as executor:
            # consume the single slot out-of-band: the next submit must be
            # refused on the submitting thread, deterministically
            held = executor.admission.admit()
            with pytest.raises(ServiceOverloadedError) as excinfo:
                executor.submit(QUERY)
            assert excinfo.value.retry_after_seconds > 0
            executor.admission.finish(held)
            outcome = executor.submit(QUERY).result()
            assert outcome.ok and outcome.rows
            stats = executor.admission_stats()
            assert stats.rejected == 1 and stats.admitted == 2

    def test_run_all_waits_out_transient_overload(self, service):
        with ConcurrentExecutor(service, max_workers=2,
                                max_queue_depth=0) as executor:
            held = executor.admission.admit()
            release = threading.Timer(0.1, executor.admission.finish, [held])
            release.start()
            try:
                outcomes = executor.run_all([QUERY, QUERY, QUERY])
            finally:
                release.cancel()
            assert all(outcome.ok for outcome in outcomes)
            assert len(outcomes) == 3

    def test_legacy_executor_has_no_admission(self, service):
        with ConcurrentExecutor(service, max_workers=2) as executor:
            assert executor.admission is None
            assert executor.admission_stats() is None
            outcomes = executor.run_all([QUERY] * 6)
            assert all(outcome.ok for outcome in outcomes)

    def test_client_rides_on_query_request(self, service):
        with ConcurrentExecutor(service, max_workers=2,
                                per_client_limit=1) as executor:
            request = QueryRequest(QUERY, client="tenant-a")
            outcome = executor.submit(request).result()
            assert outcome.ok
            assert outcome.request.client == "tenant-a"

    def test_service_executor_convenience(self, service):
        with service.executor(max_workers=2, max_queue_depth=4) as executor:
            assert executor.admission is not None
            outcome = executor.submit(QUERY).result()
            assert outcome.ok

    def test_shared_controller_across_executors(self, service):
        controller = AdmissionController(max_concurrent=2, max_queue_depth=0)
        with ConcurrentExecutor(service, max_workers=1,
                                admission=controller) as first:
            with ConcurrentExecutor(service, max_workers=1,
                                    admission=controller) as second:
                held = [controller.admit(), controller.admit()]
                with pytest.raises(ServiceOverloadedError):
                    first.submit(QUERY)
                with pytest.raises(ServiceOverloadedError):
                    second.submit(QUERY)
                for ticket in held:
                    controller.finish(ticket)
                assert first.submit(QUERY).result().ok
                assert second.submit(QUERY).result().ok
