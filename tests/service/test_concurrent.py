"""Concurrent serving: executor behavior and thread-safety stress."""

import threading

import pytest

from repro import ConcurrentExecutor, GraphService, QueryRequest
from repro.errors import GOptError

TEMPLATES = [
    ("cypher", "MATCH (p:Person) WHERE p.id = $x RETURN p.name AS n"),
    ("cypher", "MATCH (p:Person)-[:Knows]->(f:Person) WHERE p.id IN $ids "
               "RETURN f.name AS friend"),
    ("cypher", "MATCH (p:Person)-[:LocatedIn]->(c:Place) "
               "RETURN c.name AS place, count(p) AS cnt"),
    ("gremlin", "g.V().hasLabel('Person').count()"),
]


def _requests(count):
    requests = []
    for index in range(count):
        language, text = TEMPLATES[index % len(TEMPLATES)]
        if "$x" in text:
            requests.append(QueryRequest(text, parameters={"x": index % 40}))
        elif "$ids" in text:
            requests.append(QueryRequest(text, parameters={"ids": [index % 40]}))
        else:
            requests.append(QueryRequest(text, language=language))
    return requests


@pytest.fixture(scope="module")
def service(social_graph):
    return GraphService(social_graph, backend="graphscope", num_partitions=2)


class TestConcurrentExecutor:
    def test_run_all_preserves_order_and_parity(self, service):
        requests = _requests(12)
        with service.session() as session:
            serial = [session.run(r.query, r.language, r.parameters).fetch_all()
                      for r in requests]
        with ConcurrentExecutor(service, max_workers=4) as executor:
            outcomes = executor.run_all(requests)
        assert [o.request for o in outcomes] == requests
        assert all(o.ok for o in outcomes)
        assert [o.rows for o in outcomes] == serial

    def test_error_isolation(self, service):
        requests = [
            QueryRequest("MATCH (p:Person) RETURN count(p) AS c"),
            QueryRequest("THIS IS NOT CYPHER"),
            QueryRequest("MATCH (p:Place) RETURN count(p) AS c"),
        ]
        with ConcurrentExecutor(service, max_workers=2) as executor:
            outcomes = executor.run_all(requests)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok and "ParseError" in outcomes[1].error

    def test_per_query_deadline(self, service):
        with ConcurrentExecutor(service, max_workers=2,
                                deadline_seconds=0.0) as executor:
            outcome = executor.submit(
                "MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS n").result()
        assert outcome.ok and outcome.timed_out and outcome.rows == []
        # the deadline override never touches the shared backend budget
        assert service.backend.timeout_seconds not in (0, 0.0)

    def test_invalid_worker_count(self, service):
        with pytest.raises(GOptError):
            ConcurrentExecutor(service, max_workers=0)

    def test_outcome_metrics_populated(self, service):
        with ConcurrentExecutor(service, max_workers=2) as executor:
            outcome = executor.submit("MATCH (p:Person) RETURN count(p) AS c").result()
        assert outcome.metrics is not None
        assert outcome.metrics.operators_executed >= 1


@pytest.mark.slow
class TestConcurrencyStress:
    """≥8 threads of mixed cypher/gremlin through one shared service."""

    REQUESTS_PER_THREAD = 24
    THREADS = 8

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_stress_parity_and_cache_accounting(self, social_graph, engine):
        service = GraphService(social_graph, backend="graphscope",
                               num_partitions=2, engine=engine)
        requests = _requests(self.REQUESTS_PER_THREAD)
        with service.session() as session:
            serial = [session.run(r.query, r.language, r.parameters).fetch_all()
                      for r in requests]

        # warm cache state after the serial pass: every further lookup must hit
        warm = service.cache_info()
        results = {}
        errors = []
        barrier = threading.Barrier(self.THREADS)

        def client(thread_id):
            try:
                barrier.wait(timeout=30)
                with service.session() as session:
                    results[thread_id] = [
                        session.run(r.query, r.language, r.parameters).fetch_all()
                        for r in requests
                    ]
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((thread_id, repr(exc)))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors
        assert len(results) == self.THREADS

        # row parity: every thread saw exactly the serial answers
        for thread_id, rows in results.items():
            assert rows == serial, "thread %d diverged" % thread_id

        # cache accounting under concurrency: the warm cache serves every
        # lookup as a hit -- no lost updates, no spurious misses/evictions
        info = service.cache_info()
        lookups = self.THREADS * self.REQUESTS_PER_THREAD
        assert info.misses == warm.misses
        assert info.hits == warm.hits + lookups
        assert info.size == warm.size
        assert info.evictions == 0

    def test_stress_through_executor_cold_cache(self, social_graph):
        """Cold-start stress: concurrent misses must never corrupt the cache.

        Unlike the warm-cache test, optimizations race here; the invariant
        is accounting consistency (hits + misses == lookups) and result
        correctness, not an exact hit count.
        """
        service = GraphService(social_graph, backend="graphscope", num_partitions=2)
        requests = _requests(self.THREADS * self.REQUESTS_PER_THREAD)
        with service.session() as session:
            serial = [session.run(r.query, r.language, r.parameters).fetch_all()
                      for r in requests]
        service.clear_plan_cache()

        with ConcurrentExecutor(service, max_workers=self.THREADS) as executor:
            outcomes = executor.run_all(requests)
        assert all(o.ok for o in outcomes), [o.error for o in outcomes if not o.ok]
        assert [o.rows for o in outcomes] == serial

        info = service.cache_info()
        assert info.hits + info.misses == len(requests)
        assert info.size <= len(TEMPLATES) * 2  # racing misses may double-insert
        assert info.hits >= len(requests) - info.misses
