"""Prepared statements: type-only plan keying, fallback, validation."""

import pytest

from repro import GOpt, GraphService
from repro.errors import GOptError
from repro.plan_cache import freeze_type, parameter_type_signature

TEMPLATE = "MATCH (p:Person) WHERE p.id IN $ids RETURN p.name AS name"


@pytest.fixture()
def service(social_graph):
    return GraphService(social_graph, backend="graphscope", num_partitions=2,
                        plan_cache_size=32)


class TestTypeOnlyKeying:
    def test_n_distinct_values_one_entry(self, service):
        """Regression: parameter *values* must not fan out cache entries.

        The legacy facade keys inlined plans on full value signatures, so a
        parameterized workload re-optimizes per value; prepared statements
        must collapse N distinct value sets to one entry with N-1 hits.
        """
        n = 100
        with service.session() as session:
            prepared = session.prepare(TEMPLATE)
            assert prepared.deferred
            for index in range(n):
                rows = prepared.run({"ids": [index % 40]}).fetch_all()
                assert len(rows) == 1
        info = service.cache_info()
        assert info.size == 1
        assert info.misses == 1
        assert info.hits == n - 1

    def test_shared_across_prepares_and_sessions(self, service):
        with service.session() as first:
            first.prepare(TEMPLATE).run({"ids": [1]}).fetch_all()
        with service.session() as second:
            second.prepare(TEMPLATE).run({"ids": [2, 3]}).fetch_all()
        info = service.cache_info()
        assert (info.size, info.misses, info.hits) == (1, 1, 1)

    def test_session_run_with_parameters_uses_prepared_path(self, service):
        with service.session() as session:
            for index in range(5):
                session.run(TEMPLATE, parameters={"ids": [index]}).fetch_all()
        info = service.cache_info()
        assert (info.size, info.misses, info.hits) == (1, 1, 4)

    def test_type_change_is_a_new_entry(self, service):
        query = "MATCH (p:Person) WHERE p.id = $x RETURN count(p) AS c"
        with service.session() as session:
            prepared = session.prepare(query)
            prepared.run({"x": 1}).fetch_all()
            prepared.run({"x": 2}).fetch_all()       # same type: hit
            prepared.run({"x": "one"}).fetch_all()   # str: new entry
        info = service.cache_info()
        assert (info.size, info.misses, info.hits) == (2, 2, 1)

    def test_results_match_inlined_execution(self, service, social_graph):
        gopt = GOpt.for_graph(social_graph, backend="graphscope", num_partitions=2)
        with service.session() as session:
            prepared = session.prepare(TEMPLATE)
            for ids in ([0, 1], [5, 6, 7], [39]):
                assert (prepared.run({"ids": ids}).fetch_all()
                        == gopt.execute_cypher(TEMPLATE, parameters={"ids": ids}).rows)

    def test_prepared_without_shared_cache_still_reuses_plan(self, social_graph, monkeypatch):
        service = GraphService(social_graph, backend="neo4j", plan_cache_size=None)
        calls = []
        original = service.optimizer.optimize
        monkeypatch.setattr(service.optimizer, "optimize",
                            lambda plan: calls.append(1) or original(plan))
        with service.session() as session:
            prepared = session.prepare(TEMPLATE)
            for index in range(10):
                prepared.run({"ids": [index]}).fetch_all()
        assert len(calls) == 1  # optimized once, memoized locally


class TestDeferredSemantics:
    def test_missing_parameter_raises(self, service):
        with service.session() as session:
            prepared = session.prepare(TEMPLATE)
            assert prepared.parameter_names == {"ids"}
            with pytest.raises(GOptError, match=r"\$ids"):
                prepared.run({})

    def test_unreferenced_parameters_do_not_fragment_cache(self, service):
        """Extra keys (e.g. a shared context dict) must not split entries."""
        with service.session() as session:
            prepared = session.prepare(TEMPLATE)
            prepared.run({"ids": [1]}).fetch_all()
            prepared.run({"ids": [2], "junk": "a"}).fetch_all()
            prepared.run({"ids": [3], "junk": 7, "more": None}).fetch_all()
        info = service.cache_info()
        assert (info.size, info.misses, info.hits) == (1, 1, 2)

    def test_explain_needs_no_values(self, service):
        """Deferred plans are symbolic: explain() works without parameters."""
        with service.session() as session:
            text = session.prepare(TEMPLATE).explain()
        assert "physical plan" in text

    def test_template_parse_is_cached(self, service, monkeypatch):
        """Session.run with parameters must not re-parse a hot template."""
        parses = []
        original = type(service).parse
        monkeypatch.setattr(type(service), "parse",
                            lambda self, *a, **kw: parses.append(1) or original(self, *a, **kw))
        query = "MATCH (p:Person) WHERE p.name = $name RETURN p.id AS id"
        with service.session() as session:
            for index in range(10):
                session.run(query, parameters={"name": "Ada %d" % index}).fetch_all()
        assert len(parses) == 1

    def test_explain_shows_symbolic_parameter(self, service):
        # a parameter in a projection expression survives into the plan text
        # (pattern-pushed predicates are summarized, not printed)
        with service.session() as session:
            text = session.prepare(
                "MATCH (p:Person) RETURN p.age + $delta AS a").explain({"delta": 1})
        assert "$delta" in text

    def test_graph_mutation_bypasses_stale_prepared_plan(self):
        from repro.datasets import social_commerce_graph

        graph = social_commerce_graph(num_persons=20, num_products=5,
                                      num_places=3, seed=11)
        service = GraphService(graph, backend="neo4j")
        query = "MATCH (p:Person) WHERE p.age > $min RETURN count(p) AS c"
        with service.session() as session:
            prepared = session.prepare(query)
            before = prepared.run({"min": -1}).fetch_all()[0]["c"]
            graph.add_vertex("Person", {"id": 10_000, "name": "new", "age": 99})
            after = prepared.run({"min": -1}).fetch_all()[0]["c"]
        assert after == before + 1
        assert service.cache_info().size == 2  # one entry per environment

    def test_gremlin_prepare(self, service):
        with service.session() as session:
            prepared = session.prepare("g.V().hasLabel('Person').count()",
                                       language="gremlin")
            assert prepared.deferred and not prepared.parameter_names
            first = prepared.run().fetch_all()
            second = prepared.run().fetch_all()
        assert first == second
        assert service.cache_info().hits == 1


class TestInlineFallback:
    def test_structural_parameter_falls_back(self, service):
        with service.session() as session:
            prepared = session.prepare(
                "MATCH (p:Person) RETURN p.name AS n LIMIT $n")
            assert not prepared.deferred
            assert len(prepared.run({"n": 4}).fetch_all()) == 4
            assert len(prepared.run({"n": 2}).fetch_all()) == 2
        # inline plans are value-keyed: one entry per distinct value set
        assert service.cache_info().size == 2

    def test_fallback_matches_gopt(self, service, social_graph):
        gopt = GOpt.for_graph(social_graph, backend="graphscope", num_partitions=2)
        query = "MATCH (p:Person) RETURN p.name AS n LIMIT $n"
        with service.session() as session:
            prepared = session.prepare(query)
            assert (prepared.run({"n": 7}).fetch_all()
                    == gopt.execute_cypher(query, parameters={"n": 7}).rows)


class TestTypeSignatures:
    def test_freeze_type_ignores_values(self):
        assert freeze_type([1, 2]) == freeze_type([7, 8, 9])
        assert freeze_type("a") == freeze_type("zzz")
        assert freeze_type({"k": 1}) == freeze_type({"k": 99})

    def test_freeze_type_distinguishes_types(self):
        assert freeze_type(1) != freeze_type(1.0)
        assert freeze_type(1) != freeze_type(True)
        assert freeze_type([1]) != freeze_type(["a"])
        assert freeze_type([1]) != freeze_type((1,))
        assert freeze_type({"k": 1}) != freeze_type({"j": 1})

    def test_signature_order_insensitive_and_value_free(self):
        assert (parameter_type_signature({"a": 1, "b": "x"})
                == parameter_type_signature({"b": "y", "a": 2}))
        assert parameter_type_signature(None) == ()
        assert parameter_type_signature({}) == ()
