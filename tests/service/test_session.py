"""Tests for GraphService sessions: overrides, lifecycle, GOpt parity."""

import pytest

from repro import GOpt, GraphService
from repro.backend import Neo4jLikeBackend
from repro.errors import GOptError

QUERY = "MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS name"


@pytest.fixture(scope="module")
def service(social_graph):
    return GraphService(social_graph, backend="graphscope", num_partitions=2)


class TestGraphService:
    def test_session_run_matches_gopt(self, service, social_graph):
        gopt = GOpt.for_graph(social_graph, backend="graphscope", num_partitions=2)
        with service.session() as session:
            rows = session.run(QUERY).fetch_all()
        assert rows == gopt.execute_cypher(QUERY).rows

    def test_backend_selection_and_passthrough(self, social_graph):
        assert GraphService(social_graph, backend="neo4j").backend.name == "neo4j"
        backend = Neo4jLikeBackend(social_graph)
        assert GraphService(social_graph, backend=backend).backend is backend
        with pytest.raises(GOptError):
            GraphService(social_graph, backend="mystery")

    def test_gremlin_through_session(self, service):
        with service.session() as session:
            rows = session.run("g.V().hasLabel('Person').count()",
                               language="gremlin").fetch_all()
        assert rows and "count" in rows[0]

    def test_logical_plan_input(self, service):
        plan = service.parse("MATCH (p:Person) RETURN count(p) AS c")
        with service.session() as session:
            rows = session.run(plan).fetch_all()
        assert rows[0]["c"] == service.graph.vertex_count("Person")

    def test_unsupported_language_rejected(self, service):
        with pytest.raises(GOptError):
            service.parse("SELECT 1", language="sparql")

    def test_explain(self, service):
        with service.session() as session:
            text = session.explain(QUERY)
        assert "physical plan" in text and "Scan" in text


class TestSessionOverrides:
    def test_engine_override_is_per_session(self, service):
        with service.session(engine="vectorized") as vec, service.session() as row:
            assert vec.engine == "vectorized"
            assert row.engine == "row"
            assert service.backend.engine == "row"  # shared state untouched
            assert vec.run(QUERY).fetch_all() == row.run(QUERY).fetch_all()

    def test_unknown_engine_rejected(self, service):
        with pytest.raises(GOptError):
            service.session(engine="turbo")

    def test_intermediate_budget_override(self, service):
        with service.session(max_intermediate_results=1) as tiny:
            cursor = tiny.run(QUERY, stream=False)
            assert cursor.timed_out
            assert cursor.fetch_all() == []

    def test_timeout_override(self, service):
        with service.session(timeout_seconds=0.0) as instant:
            cursor = instant.run(QUERY, stream=False)
            assert cursor.timed_out

    def test_batch_size_override(self, service):
        with service.session(engine="vectorized", batch_size=2) as small:
            rows = small.run(QUERY).fetch_all()
        with service.session(engine="vectorized") as normal:
            assert rows == normal.run(QUERY).fetch_all()


class TestSessionLifecycle:
    def test_closed_session_rejects_queries(self, service):
        session = service.session()
        session.close()
        assert session.closed
        with pytest.raises(GOptError):
            session.run(QUERY)
        with pytest.raises(GOptError):
            session.prepare(QUERY)

    def test_context_manager_closes(self, service):
        with service.session() as session:
            pass
        assert session.closed

    def test_sessions_are_independent(self, service):
        first = service.session()
        second = service.session()
        first.close()
        assert not second.closed
        assert second.run("MATCH (p:Person) RETURN count(p) AS c").fetch_all()
        second.close()


class TestGOptShim:
    def test_gopt_exposes_service(self, social_graph):
        gopt = GOpt.for_graph(social_graph, backend="neo4j")
        assert isinstance(gopt.service, GraphService)
        assert gopt.service.backend is gopt.backend
        assert gopt.service.optimizer is gopt.optimizer

    def test_shim_and_service_share_plan_cache(self, social_graph):
        gopt = GOpt.for_graph(social_graph, backend="neo4j")
        gopt.execute_cypher("MATCH (p:Person) RETURN count(p) AS c")
        assert gopt.service.cache_info() == gopt.cache_info()
        assert gopt.cache_info().misses == 1
