"""Streaming execution: cursor semantics, counter parity, bounded memory."""

import pytest

from repro import GraphService
from repro.datasets import ldbc_snb_graph
from repro.errors import GOptError
from repro.optimizer.planner import OptimizerConfig

PARITY_QUERIES = [
    "MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS name",
    "MATCH (p:Person)-[:Knows]->(f:Person)-[:LocatedIn]->(c:Place) "
    "RETURN DISTINCT c.name AS place",
    "MATCH (p:Person) WHERE p.age > 30 RETURN p.name AS n",
    "MATCH (p:Person) RETURN count(p) AS c",
    "MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS n ORDER BY n LIMIT 4",
]


@pytest.fixture(scope="module")
def service(social_graph):
    return GraphService(social_graph, backend="graphscope", num_partitions=2)


class TestStreamingParity:
    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    @pytest.mark.parametrize("query", PARITY_QUERIES)
    def test_rows_and_counters_match_materialized(self, service, query, engine):
        """A fully drained stream equals the materializing engine bit-for-bit.

        Rows (content and order) must be identical; the work counters must
        be identical too unless the plan contains an early-exit LIMIT, in
        which case streaming may only do *less* work.
        """
        report = service.optimize(query)
        backend = service.backend
        materialized = backend.execute(report.physical_plan, engine=engine)
        stream = backend.execute_streaming(report.physical_plan, engine=engine)
        assert list(stream) == materialized.rows
        streamed = stream.metrics().as_dict()
        reference = materialized.metrics.as_dict()
        for key, value in reference.items():
            if key == "elapsed_seconds":
                continue
            if "LIMIT" in query:
                assert streamed[key] <= value, key
            else:
                assert streamed[key] == value, key

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_neo4j_backend_parity(self, social_graph, engine):
        service = GraphService(social_graph, backend="neo4j")
        query = PARITY_QUERIES[0]
        report = service.optimize(query)
        materialized = service.backend.execute(report.physical_plan, engine=engine)
        stream = service.backend.execute_streaming(report.physical_plan, engine=engine)
        assert list(stream) == materialized.rows


class TestEarlyExit:
    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_limit_stops_pulling(self, service, engine):
        # small batches so the vectorized engine's early exit shows on a small
        # graph too (streaming granularity is one batch)
        query = "MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS n LIMIT 5"
        report = service.optimize(query)
        materialized = service.backend.execute(report.physical_plan, engine=engine,
                                               batch_size=8)
        stream = service.backend.execute_streaming(report.physical_plan,
                                                   engine=engine, batch_size=8)
        assert list(stream) == materialized.rows
        assert (stream.metrics().intermediate_results
                < materialized.metrics.intermediate_results)

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_limit_never_materializes_on_largest_scaling_graph(self, engine):
        """Acceptance: LIMIT 5 on the largest scaling graph stays tiny.

        The streamed execution's intermediate-result counter must stay within
        a small constant of the 5 returned rows -- orders of magnitude below
        the full expansion the materializing engine performs.
        """
        graph = ldbc_snb_graph("G1000")
        # low-order statistics keep setup fast; plan quality is irrelevant here
        service = GraphService(graph, backend="graphscope",
                               config=OptimizerConfig(max_motif_vertices=2))
        query = ("MATCH (p:Person)-[:KNOWS]->(f:Person) "
                 "RETURN f.id AS friend LIMIT 5")
        with service.session(engine=engine, batch_size=32) as session:
            cursor = session.run(query)
            rows = cursor.fetch_all()
            metrics = cursor.consume()
        assert len(rows) == 5
        full = service.backend.execute(
            service.optimize(query).physical_plan, engine=engine)
        # a handful of small batches of work, not the full expansion
        assert metrics.intermediate_results < 5_000
        assert metrics.intermediate_results < full.metrics.intermediate_results / 10

    def test_early_close_stops_work(self, service):
        with service.session() as session:
            cursor = session.run(PARITY_QUERIES[0])
            assert cursor.fetch_many(2)
            partial = cursor.consume()
            full = session.run(PARITY_QUERIES[0], stream=False).consume()
        assert partial.intermediate_results < full.intermediate_results


class TestResultCursor:
    def test_fetch_interface(self, service):
        with service.session() as session:
            cursor = session.run("MATCH (p:Person) RETURN p.name AS n")
            first = cursor.fetch_one()
            assert first and "n" in first
            batch = cursor.fetch_many(10)
            assert len(batch) == 10
            rest = cursor.fetch_all()
            total = 1 + len(batch) + len(rest)
        assert total == service.graph.vertex_count("Person")

    def test_fetch_one_returns_none_at_end(self, service):
        with service.session() as session:
            cursor = session.run("MATCH (p:Person) RETURN count(p) AS c")
            assert cursor.fetch_one() is not None
            assert cursor.fetch_one() is None

    def test_fetch_many_negative_rejected(self, service):
        with service.session() as session:
            cursor = session.run("MATCH (p:Person) RETURN p.name AS n")
            with pytest.raises(GOptError):
                cursor.fetch_many(-1)
            cursor.close()

    def test_fetch_many_zero_consumes_nothing(self, service):
        with service.session() as session:
            cursor = session.run("MATCH (p:Person) RETURN p.name AS n")
            assert cursor.fetch_many(0) == []
            remaining = cursor.fetch_all()
        assert len(remaining) == service.graph.vertex_count("Person")

    def test_closed_cursor_yields_nothing(self, service):
        with service.session() as session:
            cursor = session.run("MATCH (p:Person) RETURN p.name AS n")
            cursor.close()
            assert cursor.fetch_all() == []

    def test_consume_is_idempotent(self, service):
        with service.session() as session:
            cursor = session.run("MATCH (p:Person) RETURN p.name AS n")
            first = cursor.consume()
            second = cursor.consume()
        assert first.intermediate_results == second.intermediate_results

    def test_cursor_exposes_report(self, service):
        with service.session() as session:
            cursor = session.run("MATCH (p:Person) RETURN count(p) AS c")
            assert cursor.report is not None
            assert cursor.report.physical_plan.size() >= 1
            cursor.close()

    def test_materialized_cursor_same_interface(self, service):
        with service.session() as session:
            lazy = session.run(PARITY_QUERIES[0]).fetch_all()
            eager_cursor = session.run(PARITY_QUERIES[0], stream=False)
            assert eager_cursor.fetch_all() == lazy
            assert not eager_cursor.timed_out
            assert eager_cursor.backend == "graphscope"

    def test_streaming_timeout_flags_not_raises(self, service):
        with service.session(max_intermediate_results=3) as session:
            cursor = session.run(PARITY_QUERIES[0])
            rows = cursor.fetch_all()  # stream ends at the budget, no raise
            assert cursor.timed_out
            assert cursor.consume().timed_out
            assert len(rows) <= 3
