"""Streaming pipeline breakers: incremental cursors vs the row engine.

Since the kernel-layer refactor, streaming cursors no longer materialize
whole subtrees for pipeline breakers: hash joins stream their probe side,
aggregations fold into per-group state, ``ORDER BY .. LIMIT k`` keeps a
bounded top-k heap.  These tests extend the differential suite with
breaker-heavy cursor queries and hold every engine's streaming pipeline to:

* **row parity** -- a drained cursor yields exactly the row engine's rows;
* **counter parity** -- ``ResultCursor.consume()`` after a full drain reports
  exactly the materializing row engine's work counters (plans without an
  early-exit Limit);
* **early-close correctness** -- a cursor closed after a few rows reports at
  most the full execution's counters and yields nothing afterwards;
* **bounded memory** -- top-k streams hold at most ``k + batch_size`` rows.
"""

import pytest

from repro import GraphService
from repro.datasets import ldbc_snb_graph
from repro.optimizer.planner import OptimizerConfig

COMPARED_COUNTERS = (
    "intermediate_results",
    "edges_traversed",
    "vertices_scanned",
    "tuples_shuffled",
    "operators_executed",
    "cells_produced",
)

#: breaker-heavy shapes: top-k sort, aggregate-over-join (WITH .. MATCH),
#: left-outer join, dedup over an aggregate, plain grouped aggregation
BREAKER_QUERIES = [
    "MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS n ORDER BY n LIMIT 4",
    "MATCH (p:Person)-[:Knows]->(f:Person) WITH f, count(p) AS cnt "
    "MATCH (f)-[:LocatedIn]->(c:Place) "
    "RETURN c.name AS place, cnt ORDER BY cnt DESC, place LIMIT 6",
    "MATCH (p:Person)-[:Knows]->(f:Person) OPTIONAL MATCH (f)-[:LocatedIn]->(c:Place) "
    "RETURN f.name AS n, c.name AS place ORDER BY n, place LIMIT 8",
    "MATCH (p:Person)-[:Purchased]->(i:Product) "
    "WITH i, count(p) AS buyers RETURN DISTINCT buyers ORDER BY buyers",
    "MATCH (p:Person)-[:LocatedIn]->(c:Place) "
    "RETURN c.name AS place, count(p) AS residents ORDER BY residents DESC, place",
]

ENGINES = ("row", "vectorized")


@pytest.fixture(scope="module")
def service(social_graph):
    return GraphService(social_graph, backend="graphscope", num_partitions=2)


def _reference(service, query):
    report = service.optimize(query)
    result = service.backend.execute(report.physical_plan, engine="row")
    return report, result


class TestBreakerCursorParity:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("query", BREAKER_QUERIES)
    def test_consume_counters_match_row_engine(self, service, query, engine):
        """Drained breaker cursors replay the row engine bit-for-bit.

        None of these plans contains a standalone early-exit Limit (the
        top-k limit lives inside Sort, whose input must drain anyway), so
        the streamed counters must be *exactly* the materializing row
        engine's -- not merely bounded by them.
        """
        _, reference = _reference(service, query)
        with service.session(engine=engine) as session:
            cursor = session.run(query)
            rows = cursor.fetch_all()
            metrics = cursor.consume()
        assert rows == reference.rows
        expected = reference.metrics.as_dict()
        streamed = metrics.as_dict()
        for counter in COMPARED_COUNTERS:
            assert streamed[counter] == expected[counter], (query, engine, counter)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("query", BREAKER_QUERIES)
    def test_early_close_is_correct_and_cheaper(self, service, query, engine):
        _, reference = _reference(service, query)
        take = 2
        with service.session(engine=engine) as session:
            cursor = session.run(query)
            head = cursor.fetch_many(take)
            partial = cursor.consume()
            # a closed cursor yields nothing more
            assert cursor.fetch_one() is None
            assert cursor.fetch_all() == []
        assert head == reference.rows[:take]
        expected = reference.metrics.as_dict()
        partial_counters = partial.as_dict()
        for counter in COMPARED_COUNTERS:
            assert partial_counters[counter] <= expected[counter], (
                query, engine, counter)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_dataflow_and_serial_cursors_agree(self, service, engine):
        """Cross-check the serial streaming cursors against dataflow ones."""
        query = BREAKER_QUERIES[1]
        _, reference = _reference(service, query)
        with service.session(engine="dataflow", workers=2) as session:
            assert session.run(query).fetch_all() == reference.rows
        with service.session(engine=engine) as session:
            assert session.run(query).fetch_all() == reference.rows


class TestDedupAfterPathExpand:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_distinct_targets_of_variable_length_paths(self, finance, engine):
        graph, _ = finance
        service = GraphService(graph, backend="graphscope", num_partitions=2)
        query = ("MATCH (a:Account)-[t:TRANSFERS*1..2]->(b:Account) "
                 "RETURN DISTINCT b.id AS target ORDER BY target")
        _, reference = _reference(service, query)
        with service.session(engine=engine) as session:
            cursor = session.run(query)
            rows = cursor.fetch_all()
            metrics = cursor.consume()
        assert rows == reference.rows
        expected = reference.metrics.as_dict()
        streamed = metrics.as_dict()
        for counter in COMPARED_COUNTERS:
            assert streamed[counter] == expected[counter], (engine, counter)


class TestBoundedMemoryTopK:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_topk_holds_at_most_k_plus_batch_rows(self, engine):
        """Acceptance: top-k over a large expansion stays k + batch bounded.

        The full sorted expansion has thousands of rows; the streaming
        cursor's breaker states may never buffer more than the k heap
        entries (plus one in-flight batch on the vectorized pipeline).
        """
        limit, batch_size = 5, 32
        graph = ldbc_snb_graph("G300")
        service = GraphService(graph, backend="graphscope",
                               config=OptimizerConfig(max_motif_vertices=2))
        query = ("MATCH (p:Person)-[:KNOWS]->(f:Person) "
                 "RETURN f.id AS friend ORDER BY friend LIMIT %d" % limit)
        reference = service.backend.execute(
            service.optimize(query).physical_plan, engine="row")
        with service.session(engine=engine, batch_size=batch_size) as session:
            cursor = session.run(query)
            rows = cursor.fetch_all()
            peak = cursor.peak_held_rows
            metrics = cursor.consume()
        assert rows == reference.rows
        assert len(rows) == limit
        # the win this asserts: full drain (exact counters), bounded buffer
        assert metrics.intermediate_results == reference.metrics.intermediate_results
        assert peak <= limit + batch_size
        assert reference.metrics.intermediate_results > 10 * (limit + batch_size)

    def test_join_buffers_at_most_the_smaller_side(self, service):
        """A streaming join holds the build side, not the probe side."""
        query = BREAKER_QUERIES[1]
        _, reference = _reference(service, query)
        with service.session(engine="row") as session:
            cursor = session.run(query)
            rows = cursor.fetch_all()
            peak = cursor.peak_held_rows
            cursor.close()
        assert rows == reference.rows
        # well below the execution's total intermediate volume
        assert peak < reference.metrics.intermediate_results

    def test_materialized_cursor_has_no_peak(self, service):
        with service.session() as session:
            cursor = session.run(BREAKER_QUERIES[0], stream=False)
            assert cursor.peak_held_rows is None
            cursor.close()
