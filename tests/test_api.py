"""Tests for the top-level GOpt facade."""

import pytest

from repro import GOpt
from repro.backend import Neo4jLikeBackend
from repro.errors import GOptError


@pytest.fixture(scope="module")
def gopt(social_graph):
    return GOpt.for_graph(social_graph, backend="graphscope", num_partitions=2)


class TestFacade:
    def test_execute_cypher(self, gopt):
        result = gopt.execute_cypher(
            "MATCH (p:Person)-[:Knows]->(f:Person) RETURN f.name AS name LIMIT 5")
        assert not result.timed_out
        assert len(result.rows) <= 5
        assert all("name" in row for row in result.rows)

    def test_execute_gremlin(self, gopt):
        result = gopt.execute_gremlin(
            "g.V().hasLabel('Person').as('p').out('Knows').as('f').groupCount().by('f').limit(5)")
        assert len(result.rows) <= 5

    def test_cypher_and_gremlin_agree(self, gopt):
        cypher = gopt.execute_cypher(
            "MATCH (p:Person)-[:Purchases]->(m:Product) RETURN count(p) AS cnt")
        gremlin = gopt.execute_gremlin(
            "g.V().hasLabel('Person').as('p').out('Purchases').hasLabel('Product').as('m').count()")
        assert cypher.rows[0]["cnt"] == gremlin.rows[0]["count"]

    def test_parameters(self, gopt):
        result = gopt.execute_cypher(
            "MATCH (p:Person) WHERE p.id IN $ids RETURN p.name AS name",
            parameters={"ids": [0, 1, 2]})
        assert len(result.rows) == 3

    def test_explain(self, gopt):
        text = gopt.explain("MATCH (p:Person)-[:LocatedIn]->(c:Place) RETURN count(p) AS cnt")
        assert "physical plan" in text
        assert "Scan" in text

    def test_optimize_returns_report(self, gopt):
        report = gopt.optimize("MATCH (p:Person)-[:Knows]->(f:Person) RETURN count(p) AS c")
        assert report.physical_plan.size() >= 3
        assert report.estimated_cost > 0

    def test_render_rows(self, gopt):
        result = gopt.execute_cypher("MATCH (p:Person)-[:LocatedIn]->(c:Place) RETURN p, c LIMIT 3")
        rendered = gopt.render_rows(result)
        assert rendered and all(isinstance(v, str) for row in rendered for v in row.values())

    def test_neo4j_backend_selection(self, social_graph):
        gopt = GOpt.for_graph(social_graph, backend="neo4j")
        assert isinstance(gopt.backend, Neo4jLikeBackend)
        result = gopt.execute_cypher("MATCH (p:Person) RETURN count(p) AS c")
        assert result.rows[0]["c"] == social_graph.vertex_count("Person")

    def test_backend_instance_passthrough(self, social_graph):
        backend = Neo4jLikeBackend(social_graph)
        gopt = GOpt.for_graph(social_graph, backend=backend)
        assert gopt.backend is backend

    def test_unknown_backend_rejected(self, social_graph):
        with pytest.raises(GOptError):
            GOpt.for_graph(social_graph, backend="mystery")

    def test_vectorized_engine_selection(self, social_graph):
        gopt = GOpt.for_graph(social_graph, backend="graphscope", num_partitions=2,
                              engine="vectorized")
        assert gopt.engine == "vectorized"
        result = gopt.execute_cypher("MATCH (p:Person) RETURN count(p) AS c")
        assert result.rows[0]["c"] == social_graph.vertex_count("Person")

    def test_engine_can_be_switched_at_runtime(self, social_graph):
        gopt = GOpt.for_graph(social_graph, backend="neo4j")
        assert gopt.engine == "row"
        row_rows = gopt.execute_cypher("MATCH (p:Person) RETURN p.name AS n").rows
        gopt.engine = "vectorized"
        vec_rows = gopt.execute_cypher("MATCH (p:Person) RETURN p.name AS n").rows
        assert row_rows == vec_rows

    def test_unknown_engine_rejected(self, social_graph):
        with pytest.raises(GOptError, match="row.*vectorized.*dataflow"):
            GOpt.for_graph(social_graph, backend="neo4j", engine="turbo")
        gopt = GOpt.for_graph(social_graph, backend="neo4j")
        with pytest.raises(GOptError, match="turbo"):
            gopt.engine = "turbo"
        assert gopt.available_engines() == ("row", "vectorized", "dataflow")

    def test_unknown_language_rejected(self, gopt):
        with pytest.raises(GOptError):
            gopt.parse("MATCH (a) RETURN a", language="sparql")
