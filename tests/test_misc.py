"""Miscellaneous coverage: errors, plan serialisation, explain output, reporting."""

import json

import pytest

from repro import errors
from repro.gir import GraphIrBuilder
from repro.graph.types import AllType, BasicType, Direction
from repro.lang.cypher import cypher_to_gir
from repro.optimizer.planner import GOptimizer
from repro.optimizer.physical_spec import graphscope_profile, neo4j_profile


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.SchemaError, errors.GOptError)
        assert issubclass(errors.ParseError, errors.GOptError)
        assert issubclass(errors.ExecutionTimeout, errors.ExecutionError)

    def test_parse_error_carries_position(self):
        err = errors.ParseError("boom", position=3, text="abc")
        assert err.position == 3
        assert err.text == "abc"

    def test_execution_timeout_carries_metrics(self):
        err = errors.ExecutionTimeout("over", metrics={"intermediate_results": 5})
        assert err.metrics["intermediate_results"] == 5


class TestPhysicalPlanSerialisation:
    @pytest.fixture()
    def report(self, social_graph):
        optimizer = GOptimizer.for_graph(social_graph, profile=graphscope_profile())
        plan = cypher_to_gir(
            "MATCH (p:Person)-[:Knows]->(f:Person)-[:LocatedIn]->(c:Place) "
            "WHERE c.name = 'China' RETURN count(p) AS cnt")
        return optimizer.optimize(plan)

    def test_to_dict_is_json_serialisable(self, report):
        payload = report.physical_plan.to_dict()
        text = json.dumps(payload)
        assert "inputs" in text

    def test_to_dict_nests_inputs(self, report):
        payload = report.physical_plan.to_dict()
        depth = 0
        node = payload
        while node.get("inputs"):
            node = node["inputs"][0]
            depth += 1
        assert depth >= 2
        assert node["op"] == "ScanVertex"

    def test_explain_mentions_backend_operators(self, report):
        text = report.physical_plan.explain()
        assert "Scan" in text
        assert "Aggregate" in text

    def test_operator_counts(self, report):
        physical = report.physical_plan
        assert physical.size() == len(list(physical.operators()))
        assert physical.size() >= 4


class TestProfilesOnPlanShape:
    def test_profiles_lead_to_different_plan_operators(self, social_graph):
        plan = cypher_to_gir(
            "MATCH (a:Person)-[:Knows]->(b:Person)-[:Knows]->(c:Person), (a)-[:Knows]->(c) "
            "RETURN count(a) AS cnt")
        gs = GOptimizer.for_graph(social_graph, profile=graphscope_profile()).optimize(plan)
        neo = GOptimizer.for_graph(social_graph, profile=neo4j_profile()).optimize(plan)
        gs_ops = {op.name for op in gs.physical_plan.operators()}
        neo_ops = {op.name for op in neo.physical_plan.operators()}
        assert "ExpandIntersect" in gs_ops
        assert "ExpandIntersect" not in neo_ops


class TestBuilderDefaults:
    def test_anonymous_aliases_are_generated(self):
        builder = GraphIrBuilder()
        handle = (builder.pattern_start()
                  .get_v(vtype=BasicType("Person"))
                  .expand_e(direction=Direction.OUT)
                  .get_v(vtype=AllType())
                  .pattern_end())
        pattern = handle.root.pattern
        assert pattern.num_vertices == 2
        assert pattern.num_edges == 1
        assert all(name.startswith("_") for name in pattern.vertex_names)
