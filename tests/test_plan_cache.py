"""Unit tests for the shared LRU plan cache (GOpt facade + service layer)."""

import threading

import pytest

from repro import GOpt
from repro.optimizer.planner import OptimizerConfig
from repro.plan_cache import (
    PlanCache,
    PlanCacheInfo,
    freeze_value,
    normalize_query_text,
    parameter_signature,
)

QUERY = "MATCH (p:Person) WHERE p.id IN $ids RETURN p.name AS name"


@pytest.fixture()
def gopt(social_graph):
    return GOpt.for_graph(social_graph, backend="graphscope", num_partitions=2,
                          plan_cache_size=4)


class TestHitMissAccounting:
    def test_repeat_query_hits(self, gopt):
        gopt.execute_cypher("MATCH (p:Person) RETURN count(p) AS c")
        info = gopt.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 1, 1)
        gopt.execute_cypher("MATCH (p:Person) RETURN count(p) AS c")
        info = gopt.cache_info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)

    def test_whitespace_normalization_shares_entry(self, gopt):
        gopt.optimize("MATCH (p:Person) RETURN count(p) AS c")
        gopt.optimize("MATCH   (p:Person)\n   RETURN count(p)   AS c")
        info = gopt.cache_info()
        assert (info.hits, info.misses) == (1, 1)

    def test_language_is_part_of_the_key(self, gopt):
        gopt.optimize("g.V().hasLabel('Person').count()", language="gremlin")
        gopt.optimize("g.V().hasLabel('Person').count()", language="gremlin")
        assert gopt.cache_info().hits == 1

    def test_logical_plan_inputs_bypass_the_cache(self, gopt):
        plan = gopt.parse("MATCH (p:Person) RETURN count(p) AS c")
        gopt.optimize(plan)
        gopt.optimize(plan)
        info = gopt.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_cache_can_be_disabled(self, social_graph):
        gopt = GOpt.for_graph(social_graph, backend="neo4j", plan_cache_size=None)
        gopt.execute_cypher("MATCH (p:Person) RETURN count(p) AS c")
        gopt.execute_cypher("MATCH (p:Person) RETURN count(p) AS c")
        info = gopt.cache_info()
        assert (info.hits, info.misses, info.capacity) == (0, 0, 0)

    @pytest.mark.parametrize("size", [None, 0])
    def test_disabled_cache_reports_sentinel(self, social_graph, size):
        """``capacity == 0`` is the documented "caching disabled" marker.

        A live cache always has capacity >= 1 (PlanCache rejects less), so
        the sentinel is unambiguous; ``cache_info`` stays all-zero no matter
        how many queries run, and ``clear_plan_cache`` is a safe no-op.
        """
        gopt = GOpt.for_graph(social_graph, backend="neo4j", plan_cache_size=size)
        assert gopt.cache_info() == PlanCacheInfo.disabled()
        assert gopt.cache_info().capacity == 0
        gopt.execute_cypher("MATCH (p:Person) RETURN count(p) AS c")
        gopt.clear_plan_cache()  # no-op, must not raise
        assert gopt.cache_info() == PlanCacheInfo.disabled()

    def test_enabled_cache_never_reports_capacity_zero(self, gopt):
        assert gopt.cache_info().capacity >= 1

    def test_clear_resets_counts(self, gopt):
        gopt.optimize("MATCH (p:Person) RETURN count(p) AS c")
        gopt.clear_plan_cache()
        info = gopt.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_cached_report_still_executes_with_current_values(self, gopt):
        first = gopt.execute_cypher(QUERY, parameters={"ids": [0, 1, 2]})
        second = gopt.execute_cypher(QUERY, parameters={"ids": [0, 1, 2]})
        assert gopt.cache_info().hits == 1
        assert first.rows == second.rows
        assert len(second.rows) == 3


class TestParameterSignatureIsolation:
    def test_different_values_do_not_collide(self, gopt):
        a = gopt.execute_cypher(QUERY, parameters={"ids": [0, 1]})
        b = gopt.execute_cypher(QUERY, parameters={"ids": [0, 1, 2, 3]})
        assert gopt.cache_info().hits == 0
        assert len(a.rows) == 2 and len(b.rows) == 4

    def test_same_text_different_param_types_do_not_collide(self, gopt):
        # 1 and 1.0 and True are ==/hash-equal in Python but are different
        # literals once inlined; the signature must keep them apart
        query = "MATCH (p:Person) WHERE p.id = $x RETURN count(p) AS c"
        gopt.optimize(query, parameters={"x": 1})
        gopt.optimize(query, parameters={"x": 1.0})
        gopt.optimize(query, parameters={"x": True})
        info = gopt.cache_info()
        assert (info.hits, info.misses) == (0, 3)
        # repeating each now hits its own entry
        gopt.optimize(query, parameters={"x": 1})
        gopt.optimize(query, parameters={"x": 1.0})
        assert gopt.cache_info().hits == 2

    def test_signature_is_order_insensitive(self):
        assert parameter_signature({"a": 1, "b": 2}) == parameter_signature({"b": 2, "a": 1})

    def test_freeze_value_distinguishes_types(self):
        assert freeze_value(1) != freeze_value(1.0)
        assert freeze_value(1) != freeze_value(True)
        assert freeze_value([1, 2]) != freeze_value((1, 2))
        assert freeze_value({1, 2}) == freeze_value({2, 1})

    def test_normalize_query_text(self):
        assert normalize_query_text(" MATCH  (a)\n RETURN a ") == "MATCH (a) RETURN a"

    def test_normalization_preserves_string_literals(self):
        # whitespace inside quotes is significant; collapsing it would make
        # different queries collide on one cache entry
        a = normalize_query_text('MATCH (p) WHERE p.name = "A  B" RETURN p')
        b = normalize_query_text('MATCH (p) WHERE p.name = "A B" RETURN p')
        assert a != b
        assert '"A  B"' in a
        assert normalize_query_text("WHERE x = 'a\n b'") == "WHERE x = 'a\n b'"
        # unterminated literal: kept verbatim to the end, no crash
        assert normalize_query_text('RETURN "dangling  text').endswith('"dangling  text')

    def test_queries_differing_only_inside_literals_do_not_collide(self, gopt):
        template = 'MATCH (p:Person) WHERE p.name = %s RETURN count(p) AS c'
        gopt.optimize(template % '"Ada  0"')
        gopt.optimize(template % '"Ada 0"')
        info = gopt.cache_info()
        assert (info.hits, info.misses) == (0, 2)


class TestEvictionOrder:
    def test_lru_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put(("q1",), "r1")
        cache.put(("q2",), "r2")
        assert cache.get(("q1",)) == "r1"   # refresh q1
        cache.put(("q3",), "r3")            # evicts q2, the LRU entry
        assert cache.get(("q2",)) is None
        assert cache.get(("q1",)) == "r1"
        assert cache.get(("q3",)) == "r3"
        assert cache.info().evictions == 1

    def test_capacity_enforced_via_facade(self, gopt):
        for index in range(6):
            gopt.optimize("MATCH (p:Person) RETURN count(p) AS c%d" % index)
        info = gopt.cache_info()
        assert info.size == 4
        assert info.evictions == 2

    def test_put_existing_key_updates_without_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put(("q",), "old")
        cache.put(("q",), "new")
        assert cache.get(("q",)) == "new"
        assert cache.info().size == 1
        assert cache.info().evictions == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)


class TestThreadSafety:
    def test_concurrent_accounting_is_exact(self):
        """Hammering one cache from many threads loses no counter updates."""
        cache = PlanCache(capacity=16)
        keys = [("q%d" % index,) for index in range(8)]
        for key in keys:
            cache.put(key, "plan")
        threads_count, lookups_per_thread = 8, 500

        def worker():
            for index in range(lookups_per_thread):
                assert cache.get(keys[index % len(keys)]) == "plan"

        threads = [threading.Thread(target=worker) for _ in range(threads_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        info = cache.info()
        assert info.hits == threads_count * lookups_per_thread
        assert info.misses == 0
        assert info.size == len(keys)

    def test_concurrent_inserts_respect_capacity(self):
        cache = PlanCache(capacity=4)

        def worker(base):
            for index in range(200):
                cache.put(("k", base, index % 10), index)
                cache.get(("k", base, index % 10))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        info = cache.info()
        assert info.size <= 4
        assert len(cache) == info.size


class TestEnvironmentBypass:
    def test_graph_mutation_bypasses_stale_entries(self):
        from repro.datasets import social_commerce_graph

        # private graph: the shared fixture must not be mutated
        graph = social_commerce_graph(num_persons=20, num_products=5,
                                      num_places=3, seed=11)
        gopt = GOpt.for_graph(graph, backend="neo4j")
        query = "MATCH (p:Person) RETURN count(p) AS c"
        before = gopt.execute_cypher(query).rows[0]["c"]
        gopt.execute_cypher(query)
        assert gopt.cache_info().hits == 1
        graph.add_vertex("Person", {"id": 10_000, "name": "new"})
        after = gopt.execute_cypher(query).rows[0]["c"]
        assert after == before + 1          # fresh plan, fresh environment key
        assert gopt.cache_info().hits == 1  # no stale hit

    def test_engine_flip_bypasses(self, gopt):
        query = "MATCH (p:Person) RETURN count(p) AS c"
        gopt.optimize(query)
        gopt.engine = "vectorized"
        gopt.optimize(query)
        info = gopt.cache_info()
        assert (info.hits, info.misses) == (0, 2)

    def test_config_change_bypasses(self, social_graph):
        gopt = GOpt.for_graph(social_graph, backend="neo4j")
        query = "MATCH (p:Person)-[:Knows]->(f:Person) RETURN count(f) AS c"
        gopt.optimize(query)
        from repro.optimizer.planner import GOptimizer
        gopt.optimizer = GOptimizer.for_graph(
            social_graph, profile=gopt.backend.profile(),
            config=OptimizerConfig(enable_cbo=False))
        gopt.optimize(query)
        info = gopt.cache_info()
        assert (info.hits, info.misses) == (0, 2)
