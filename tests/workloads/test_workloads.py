"""Tests for the workload query suites: they must parse, plan and execute."""

import pytest

from repro.backend import GraphScopeLikeBackend
from repro.optimizer.cost_model import CostModel
from repro.optimizer.glogue import Glogue
from repro.optimizer.cardinality import GlogueQuery
from repro.optimizer.physical_spec import graphscope_profile
from repro.optimizer.planner import GOptimizer
from repro.workloads import bi_queries, ic_queries, qc_queries, qr_queries, qt_queries, st_queries
from repro.workloads.st_paths import (
    join_position,
    single_direction_plan,
    split_plan,
    st_path_cypher,
    st_path_pattern,
)


class TestQuerySets:
    def test_expected_sizes(self, finance):
        _, id_sets = finance
        assert len(qr_queries()) == 8
        assert len(qt_queries()) == 5
        assert len(qc_queries()) == 8
        assert len(ic_queries()) == 12
        assert len(bi_queries()) == 17
        assert len(st_queries(id_sets)) == 5

    def test_query_names_unique(self):
        names = [q.name for q in list(ic_queries()) + list(bi_queries())]
        assert len(names) == len(set(names))

    def test_get_by_name(self):
        assert qr_queries().get("QR5").name == "QR5"
        with pytest.raises(KeyError):
            qr_queries().get("QR99")

    def test_gremlin_coverage(self):
        gremlin_capable = [q.name for q in list(qr_queries()) + list(qc_queries()) if q.has_gremlin]
        assert "QR1" in gremlin_capable and "QC4a" in gremlin_capable
        assert len(gremlin_capable) >= 10

    def test_gremlin_missing_raises(self):
        query = qt_queries().get("QT1")
        with pytest.raises(ValueError):
            query.logical_plan(language="gremlin")


class TestPlansAreWellFormed:
    @pytest.mark.parametrize("query", list(qr_queries()) + list(qt_queries()) + list(qc_queries()),
                             ids=lambda q: q.name)
    def test_micro_queries_lower_to_gir(self, query):
        plan = query.logical_plan()
        assert plan.size() >= 1
        assert plan.patterns(), "every micro query contains a pattern"

    @pytest.mark.parametrize("query", list(ic_queries()) + list(bi_queries()), ids=lambda q: q.name)
    def test_ldbc_queries_lower_to_gir(self, query):
        plan = query.logical_plan()
        assert plan.patterns()

    @pytest.mark.parametrize("query", [q for q in list(qr_queries()) + list(qc_queries()) if q.has_gremlin],
                             ids=lambda q: q.name)
    def test_gremlin_forms_lower_to_gir(self, query):
        plan = query.logical_plan(language="gremlin")
        assert plan.patterns()

    @pytest.mark.parametrize("query", list(ic_queries()) + list(bi_queries()), ids=lambda q: q.name)
    def test_ldbc_queries_optimize_and_execute(self, query, ldbc_graph, ldbc_glogue):
        backend = GraphScopeLikeBackend(ldbc_graph, max_intermediate_results=300_000,
                                        timeout_seconds=20.0)
        optimizer = GOptimizer.for_graph(ldbc_graph, profile=backend.profile(), glogue=ldbc_glogue)
        report = optimizer.optimize(query.logical_plan())
        result = backend.execute(report.physical_plan)
        assert not result.timed_out, "optimized LDBC query should finish within budget"


class TestStPaths:
    def test_cypher_text_unrolls_hops(self):
        text = st_path_cypher(hops=3)
        assert text.count("TRANSFERS") == 3
        assert "$S1" in text and "$S2" in text

    def test_pattern_construction(self):
        pattern = st_path_pattern([1, 2], [3], hops=3)
        assert pattern.num_vertices == 4
        assert pattern.num_edges == 3
        assert len(pattern.vertex("p0").predicates) == 1
        assert len(pattern.vertex("p3").predicates) == 1

    def test_split_plan_positions(self, finance):
        graph, id_sets = finance
        gq = GlogueQuery(Glogue.from_graph(graph))
        cost_model = CostModel(gq, graphscope_profile())
        pattern = st_path_pattern(id_sets["S1_small"], id_sets["S2_small"], hops=4)
        plan = split_plan(pattern, cost_model, left_hops=1)
        assert join_position(plan) == "(1, 3)"
        single = single_direction_plan(pattern, cost_model)
        assert join_position(single) == "(4, 0)"

    def test_split_plan_validates_bounds(self, finance):
        graph, id_sets = finance
        gq = GlogueQuery(Glogue.from_graph(graph))
        cost_model = CostModel(gq, graphscope_profile())
        pattern = st_path_pattern(id_sets["S1_small"], id_sets["S2_small"], hops=4)
        with pytest.raises(ValueError):
            split_plan(pattern, cost_model, left_hops=0)
        with pytest.raises(ValueError):
            split_plan(pattern, cost_model, left_hops=4)

    def test_st_queries_carry_parameters(self, finance):
        _, id_sets = finance
        queries = st_queries(id_sets, hops=3)
        query = queries.get("ST1")
        plan = query.logical_plan()
        assert plan.patterns()[0].pattern.num_edges == 3
